//! Register allocators for `parsched`: classic Chaitin coloring and the
//! combined allocator of Pinter (PLDI 1993).
//!
//! The crate is organized around the paper's pipeline:
//!
//! * [`BlockAllocProblem`] — allocation vertices (definitions and live-in
//!   values, Claim 1) and the interference graph `Gr` of one basic block;
//! * [`pig`] — the **parallelizable interference graph** `G = Gr ∪ Ef`
//!   (restricted to defining vertices), whose optimal coloring yields a
//!   spill-free allocation with no false dependences (Theorems 1 and 2);
//! * [`chaitin`] — the classic simplify/spill/select allocator used as the
//!   phase-ordered baseline;
//! * [`combined`] — the paper's Section 4 coloring procedure: simplify on
//!   the PIG, false-edge removal under register pressure (Lemmas 2/3), the
//!   weighted spill metric `h*`, and iterated spilling;
//! * [`spill`] — spill-code insertion and rewriting;
//! * [`assignment`] — symbolic→physical rewriting plus an independent
//!   validity checker;
//! * [`global`] — the inter-block extension: webs as vertices, region-wide
//!   false-dependence edges;
//! * [`AllocSession`] — a reusable session holding the dependence graph and
//!   incrementally-maintained closure across spill rounds and functions,
//!   deriving the PIG from closure rows instead of rebuilding it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocator;
pub mod assignment;
pub mod chaitin;
pub mod combined;
pub mod global;
pub mod limits;
pub mod linear;
pub mod pig;
mod problem;
mod session;
pub mod spill;

pub use allocator::{
    allocate_single_block, allocate_single_block_in, AllocError, BlockAllocation, BlockStrategy,
};
pub use combined::{EdgeRemovalPolicy, PinterConfig, SpillMetric};
pub use limits::{AllocLimits, BudgetExceeded, DEFAULT_MAX_ROUNDS};
pub use pig::{AugmentedPig, Pig};
pub use problem::{BlockAllocProblem, ProblemError};
pub use session::AllocSession;
