//! The block-level allocation problem: vertices and interference graph.

use parsched_graph::UnGraph;
use parsched_ir::liveness::Liveness;
use parsched_ir::{BlockId, Function, Reg};
use std::collections::{BTreeSet, HashMap};
use std::error::Error;
use std::fmt;

/// The register-allocation problem for one basic block.
///
/// Vertices follow the paper's Claim 1: every allocation vertex is either a
/// *definition* in the block body (so it corresponds to an instruction of
/// the schedule graph, `Vr ⊆ Vs`) or a value *live into* the block (defined
/// upstream — such vertices take part in coloring but carry no
/// false-dependence edges, since their defining instruction is elsewhere).
///
/// Interference follows the paper's definition with the classic last-use
/// refinement: a definition interferes with every value live *immediately
/// after* the defining instruction — "the end point of the live interval …
/// is not considered part of the interval; this enables the reuse of the
/// register in the same statement that last uses it".
#[derive(Debug, Clone)]
pub struct BlockAllocProblem {
    block: BlockId,
    nodes: Vec<Reg>,
    node_of_reg: HashMap<Reg, usize>,
    def_site: Vec<Option<usize>>,
    uses_count: Vec<u32>,
    interference: UnGraph,
}

/// Errors constructing a [`BlockAllocProblem`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProblemError {
    /// A symbolic register is defined more than once in the block; the
    /// paper's framework assumes one symbolic register per value. Run the
    /// webs/"right number of names" renaming first.
    MultipleDefs {
        /// The offending register.
        reg: Reg,
    },
    /// A register is defined in the block but the block also sees it
    /// live-in (a block-local analysis cannot name both values).
    DefShadowsLiveIn {
        /// The offending register.
        reg: Reg,
    },
}

impl fmt::Display for ProblemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProblemError::MultipleDefs { reg } => {
                write!(f, "register {reg} defined more than once in the block")
            }
            ProblemError::DefShadowsLiveIn { reg } => {
                write!(f, "register {reg} is both live-in and defined in the block")
            }
        }
    }
}

impl Error for ProblemError {}

impl BlockAllocProblem {
    /// Builds the problem for `block_id` of `func` using `liveness`.
    ///
    /// # Errors
    /// Returns [`ProblemError`] if the block violates the single-definition
    /// discipline for symbolic registers.
    pub fn build(
        func: &Function,
        block_id: BlockId,
        liveness: &Liveness,
    ) -> Result<BlockAllocProblem, ProblemError> {
        let block = func.block(block_id);
        let body = block.body();
        let live_in = liveness.live_in(block_id);

        // Enumerate nodes: live-in values first (deterministic BTreeSet
        // order), then body definitions in program order.
        let mut nodes: Vec<Reg> = Vec::new();
        let mut node_of_reg: HashMap<Reg, usize> = HashMap::new();
        let mut def_site: Vec<Option<usize>> = Vec::new();
        for &r in live_in {
            node_of_reg.insert(r, nodes.len());
            nodes.push(r);
            def_site.push(None);
        }
        for (i, inst) in body.iter().enumerate() {
            for d in inst.defs() {
                if let Some(&existing) = node_of_reg.get(&d) {
                    return Err(if def_site[existing].is_none() {
                        ProblemError::DefShadowsLiveIn { reg: d }
                    } else {
                        ProblemError::MultipleDefs { reg: d }
                    });
                }
                node_of_reg.insert(d, nodes.len());
                nodes.push(d);
                def_site.push(Some(i));
            }
        }

        // Count uses for spill costs (terminator uses count too).
        let mut uses_count = vec![0u32; nodes.len()];
        for inst in block.insts() {
            for u in inst.uses() {
                if let Some(&n) = node_of_reg.get(&u) {
                    uses_count[n] += 1;
                }
            }
        }

        // Interference: def point of each node vs values live right after.
        let mut interference = UnGraph::new(nodes.len());
        let per_inst = liveness.per_inst_live_out(func, block_id);
        let add_live_edges = |g: &mut UnGraph, node: usize, live: &BTreeSet<Reg>| {
            for &other in live {
                if let Some(&o) = node_of_reg.get(&other) {
                    if o != node {
                        g.add_edge(node, o);
                    }
                }
            }
        };
        // Live-in values are all simultaneously live at entry.
        let live_in_nodes: Vec<usize> = live_in.iter().map(|r| node_of_reg[r]).collect();
        for (a, &u) in live_in_nodes.iter().enumerate() {
            for &v in &live_in_nodes[a + 1..] {
                interference.add_edge(u, v);
            }
        }
        // Definitions interfere with the live-out set of their instruction.
        for (i, inst) in body.iter().enumerate() {
            // The live set after the *last body inst* vs terminator handled
            // implicitly: per_inst covers every body instruction.
            for d in inst.defs() {
                let n = node_of_reg[&d];
                add_live_edges(&mut interference, n, &per_inst[i]);
            }
        }

        Ok(BlockAllocProblem {
            block: block_id,
            nodes,
            node_of_reg,
            def_site,
            uses_count,
            interference,
        })
    }

    /// The block this problem describes.
    pub fn block(&self) -> BlockId {
        self.block
    }

    /// Allocation vertices: the register each node names.
    pub fn nodes(&self) -> &[Reg] {
        &self.nodes
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the problem has no vertices.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node for register `r`, if `r` is live-in or defined here.
    pub fn node_of(&self, r: Reg) -> Option<usize> {
        self.node_of_reg.get(&r).copied()
    }

    /// The body-instruction index defining node `n`, or `None` for live-in
    /// values.
    pub fn def_site(&self, n: usize) -> Option<usize> {
        self.def_site[n]
    }

    /// The node defined by body instruction `i`, if any.
    pub fn node_defined_at(&self, i: usize) -> Option<usize> {
        // def_site is monotone over the trailing section; linear scan is
        // fine at block scale.
        (0..self.nodes.len()).find(|&n| self.def_site[n] == Some(i))
    }

    /// Number of uses of node `n` within the block (terminator included).
    pub fn uses_count(&self, n: usize) -> u32 {
        self.uses_count[n]
    }

    /// The paper's spill-cost numerator: a value that is defined and used
    /// often is expensive to keep in memory. Block-level: `1 + uses`.
    pub fn spill_cost(&self, n: usize) -> f64 {
        1.0 + f64::from(self.uses_count[n])
    }

    /// The interference graph `Gr` over the vertices.
    pub fn interference(&self) -> &UnGraph {
        &self.interference
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched_ir::parse_function;

    fn problem(src: &str) -> BlockAllocProblem {
        let f = parse_function(src).unwrap();
        let lv = Liveness::compute(&f, &[]);
        BlockAllocProblem::build(&f, BlockId(0), &lv).unwrap()
    }

    #[test]
    fn example1_interference_matches_figure2c() {
        // Example 1(b); Figure 2(c) shows Gr with edges s1-s2, s1-s3, s1-s4.
        let p = problem(
            r#"
            func @ex1(s9) {
            entry:
                s1 = load [@z + 0]
                s2 = fadd s9, 0
                s3 = load [s2 + 0]
                s4 = add s1, s1
                s5 = mul s3, s1
                ret s5
            }
            "#,
        );
        let g = p.interference();
        let n = |r: u32| p.node_of(Reg::sym(r)).unwrap();
        // s1 is live across s2, s3, s4 definitions.
        assert!(g.has_edge(n(1), n(2)));
        assert!(g.has_edge(n(1), n(3)));
        assert!(g.has_edge(n(1), n(4)));
        // s2 dies at s3's def (last use not in interval): no s2-s3 edge.
        assert!(!g.has_edge(n(2), n(3)));
        // s3 dies at s5's def; s4 and s3 overlap (s3 live after s4's def).
        assert!(g.has_edge(n(3), n(4)));
        assert!(!g.has_edge(n(3), n(5)));
        // s5 defined after everything died except nothing: isolated.
        assert_eq!(g.degree(n(5)), 0);
    }

    #[test]
    fn live_in_values_form_clique() {
        let p = problem(
            r#"
            func @li(s0, s1, s2) {
            entry:
                s3 = add s0, s1
                s4 = add s3, s2
                ret s4
            }
            "#,
        );
        let g = p.interference();
        let n = |r: u32| p.node_of(Reg::sym(r)).unwrap();
        assert!(g.has_edge(n(0), n(1)));
        assert!(g.has_edge(n(0), n(2)));
        assert!(g.has_edge(n(1), n(2)));
        // s3 defined while s2 still live.
        assert!(g.has_edge(n(3), n(2)));
        assert!(!g.has_edge(n(3), n(0)), "s0 dead after s3's def");
    }

    #[test]
    fn def_sites_and_costs() {
        let p = problem(
            r#"
            func @c(s0) {
            entry:
                s1 = add s0, s0
                s2 = add s1, s1
                ret s2
            }
            "#,
        );
        let s0 = p.node_of(Reg::sym(0)).unwrap();
        let s1 = p.node_of(Reg::sym(1)).unwrap();
        assert_eq!(p.def_site(s0), None);
        assert_eq!(p.def_site(s1), Some(0));
        assert_eq!(p.node_defined_at(0), Some(s1));
        assert_eq!(p.uses_count(s0), 2);
        assert_eq!(p.uses_count(s1), 2);
        assert!(p.spill_cost(s0) > 2.9);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn rejects_double_definition() {
        let f = parse_function(
            r#"
            func @dd() {
            entry:
                s0 = li 1
                s0 = li 2
                ret s0
            }
            "#,
        )
        .unwrap();
        let lv = Liveness::compute(&f, &[]);
        let err = BlockAllocProblem::build(&f, BlockId(0), &lv).unwrap_err();
        assert_eq!(err, ProblemError::MultipleDefs { reg: Reg::sym(0) });
        assert!(err.to_string().contains("more than once"));
    }

    #[test]
    fn rejects_def_shadowing_live_in() {
        let f = parse_function(
            r#"
            func @sh(s0) {
            entry:
                s1 = add s0, 1
                s0 = li 2
                s2 = add s0, s1
                ret s2
            }
            "#,
        )
        .unwrap();
        let lv = Liveness::compute(&f, &[]);
        let err = BlockAllocProblem::build(&f, BlockId(0), &lv).unwrap_err();
        assert_eq!(err, ProblemError::DefShadowsLiveIn { reg: Reg::sym(0) });
    }
}
