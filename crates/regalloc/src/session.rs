//! Reusable allocation sessions.
//!
//! An [`AllocSession`] wraps a [`SchedSession`] (the dependence graph and
//! its incrementally-maintained transitive closure) and derives the PIG
//! from the closure *rows* directly, without ever materializing the dense
//! `Et`/`Ef` graphs that [`crate::Pig::build`] constructs from scratch.
//! Across a spill loop this replaces the per-round `O(n³)` closure plus
//! `O(n²)` complement with an incremental closure update and a row walk
//! restricted to defining instructions — the tentpole of making the
//! combined strategy competitive in compile time.
//!
//! The session is reusable across functions: [`AllocSession::begin`] fully
//! resets it for a new block while keeping allocations warm, which is what
//! the batch driver's per-worker sessions rely on.

use crate::limits::BudgetExceeded;
use crate::pig::Pig;
use crate::problem::BlockAllocProblem;
use parsched_graph::{BitSet, ClosureMode, UnGraph, DEADLINE_STRIDE};
use parsched_ir::Block;
use parsched_machine::{MachineDesc, OpClass};
use parsched_sched::{BlockRemap, DeadlineExceeded, DepGraph, SchedSession};
use std::time::Instant;

/// Converts the scheduler's cooperative-deadline trip into the allocator's
/// typed budget error. Deadlines carry no meaningful count, so
/// `limit`/`actual` are 0 by the [`BudgetExceeded`] convention.
fn deadline_budget(e: DeadlineExceeded) -> BudgetExceeded {
    BudgetExceeded {
        phase: e.phase,
        limit: 0,
        actual: 0,
    }
}

/// Long-lived allocation state for one block, reusable across spill rounds
/// (via [`AllocSession::rebuild_after_spill`]) and across functions (via
/// [`AllocSession::begin`]).
///
/// Telemetry: closure maintenance reports `pig.full_rebuilds` /
/// `pig.incremental_nodes` (see [`SchedSession`]); every
/// [`AllocSession::build_pig`] call bumps `pig.rounds` and reports the
/// usual `pig.*` construction statistics.
#[derive(Debug)]
pub struct AllocSession {
    sched: SchedSession,
    scratch: BitSet,
    // Pooled Ef accumulator for `build_pig_into`, reset each round so the
    // spill loop does not reallocate a graph per round.
    false_edges: UnGraph,
}

impl Default for AllocSession {
    fn default() -> Self {
        AllocSession::new()
    }
}

impl AllocSession {
    /// Creates an empty session.
    pub fn new() -> AllocSession {
        AllocSession {
            sched: SchedSession::new(),
            scratch: BitSet::new(0),
            false_edges: UnGraph::new(0),
        }
    }

    /// Sets (or clears) the wall-clock deadline polled cooperatively inside
    /// closure maintenance and [`AllocSession::build_pig`]'s row walk, every
    /// ~[`DEADLINE_STRIDE`] units of work.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.sched.set_deadline(deadline);
    }

    /// Sets the reachability backend policy (see
    /// [`parsched_sched::SchedSession::set_closure_mode`]); takes effect at
    /// the next [`AllocSession::begin`].
    pub fn set_closure_mode(&mut self, mode: ClosureMode) {
        self.sched.set_closure_mode(mode);
    }

    /// The configured reachability backend policy.
    pub fn closure_mode(&self) -> ClosureMode {
        self.sched.closure_mode()
    }

    /// Starts a fresh block: full dependence-graph and closure build. Also
    /// the reset between functions when a session is reused.
    ///
    /// # Errors
    /// Returns [`BudgetExceeded`] if the session deadline (see
    /// [`AllocSession::set_deadline`]) passes mid-build; the session is left
    /// empty, never half-built.
    pub fn begin(
        &mut self,
        block: &Block,
        telemetry: &dyn parsched_telemetry::Telemetry,
    ) -> Result<(), BudgetExceeded> {
        self.sched.build(block, telemetry).map_err(deadline_budget)
    }

    /// Updates the session after a spill round rewrote the block, reusing
    /// closure rows the inserted loads/stores did not dirty. Falls back to
    /// a full build when the remap does not match the stored state.
    ///
    /// # Errors
    /// Returns [`BudgetExceeded`] if the session deadline passes mid-rebuild.
    pub fn rebuild_after_spill(
        &mut self,
        block: &Block,
        remap: &BlockRemap,
        telemetry: &dyn parsched_telemetry::Telemetry,
    ) -> Result<(), BudgetExceeded> {
        self.sched
            .rebuild_after_spill(block, remap, telemetry)
            .map_err(deadline_budget)
    }

    /// The current dependence graph, if a block has been built.
    pub fn deps(&self) -> Option<&DepGraph> {
        self.sched.deps()
    }

    /// The underlying scheduling session.
    pub fn sched(&self) -> &SchedSession {
        &self.sched
    }

    /// Builds the PIG for `problem` from the session's closure rows.
    ///
    /// Edge-identical to [`Pig::build`] on the same inputs (the property
    /// suite in `tests/sessions.rs` checks this across seeded spill loops),
    /// but touches only the rows of *defining* instructions: a pair of
    /// definition vertices gets an `Ef` edge exactly when neither
    /// instruction reaches the other in the closure and their op classes
    /// have no pairwise machine conflict.
    ///
    /// Returns `Ok(None)` if no block has been built or the stored closure
    /// does not cover `deps` — callers should fall back to [`Pig::build`].
    ///
    /// # Errors
    /// Returns [`BudgetExceeded`] if the session deadline passes during the
    /// `Ef` row walk (polled every ~[`DEADLINE_STRIDE`] rows).
    pub fn build_pig(
        &mut self,
        problem: &BlockAllocProblem,
        machine: &MachineDesc,
        telemetry: &dyn parsched_telemetry::Telemetry,
    ) -> Result<Option<Pig>, BudgetExceeded> {
        let mut slot = None;
        self.build_pig_into(problem, machine, telemetry, &mut slot)?;
        Ok(slot)
    }

    /// [`AllocSession::build_pig`], but rebuilding into `slot` in place.
    ///
    /// On success `slot` holds the PIG; a previous round's PIG left in the
    /// slot donates its buffers, making the per-round rebuild allocation-
    /// free once sizes stabilize. Sets `slot` to `None` (the
    /// fall-back-to-[`Pig::build`] signal) in the same cases `build_pig`
    /// returns `Ok(None)`.
    ///
    /// # Errors
    /// Returns [`BudgetExceeded`] under the same conditions as
    /// [`AllocSession::build_pig`]; `slot` is cleared.
    pub fn build_pig_into(
        &mut self,
        problem: &BlockAllocProblem,
        machine: &MachineDesc,
        telemetry: &dyn parsched_telemetry::Telemetry,
        slot: &mut Option<Pig>,
    ) -> Result<(), BudgetExceeded> {
        // Take the previous PIG up front: every early exit then leaves the
        // slot empty, and the success path reuses its buffers.
        let donor = slot.take();
        let Some(deps) = self.sched.deps() else {
            return Ok(());
        };
        let n = deps.len();
        if self.sched.reachability().len() != n {
            return Ok(());
        }
        let _span = parsched_telemetry::span(telemetry, "pig.build");
        let reach = self.sched.reachability();

        // def_node[i] = allocation vertex defined at body position i.
        let mut def_node: Vec<Option<usize>> = vec![None; n];
        let mut def_mask = BitSet::new(n);
        for node in 0..problem.len() {
            if let Some(i) = problem.def_site(node) {
                if i < n {
                    def_node[i] = Some(node);
                    def_mask.insert(i);
                }
            }
        }

        // Positions grouped by op class, and per-class conflict rows:
        // conflict_row(c) = ⋃ { positions of class d : c conflicts with d }.
        let classes = deps.classes();
        let mut class_positions: Vec<(OpClass, BitSet)> = Vec::new();
        for (i, &c) in classes.iter().enumerate() {
            match class_positions.iter_mut().find(|(d, _)| *d == c) {
                Some((_, set)) => {
                    set.insert(i);
                }
                None => {
                    let mut set = BitSet::new(n);
                    set.insert(i);
                    class_positions.push((c, set));
                }
            }
        }
        let conflict_rows: Vec<BitSet> = class_positions
            .iter()
            .map(|(c, _)| {
                let mut row = BitSet::new(n);
                for (d, set) in &class_positions {
                    if machine.pairwise_conflict(*c, *d) {
                        row.union_with(set);
                    }
                }
                row
            })
            .collect();
        // conflict_idx[i] = index of position i's class in conflict_rows,
        // hoisting the per-row class lookup out of the walk below.
        let conflict_idx: Vec<usize> = classes
            .iter()
            .map(|c| {
                class_positions
                    .iter()
                    .position(|(d, _)| d == c)
                    .unwrap_or(0)
            })
            .collect();

        let _ef_span = parsched_telemetry::span(telemetry, "pig.ef_rows");
        let deadline = self.sched.deadline();
        if self.scratch.capacity() != n {
            self.scratch = BitSet::new(n);
        }
        self.false_edges.reset(problem.len());
        for (processed, i) in def_mask.iter().enumerate() {
            if processed % DEADLINE_STRIDE == DEADLINE_STRIDE - 1
                && deadline.is_some_and(|d| Instant::now() >= d)
            {
                return Err(BudgetExceeded {
                    phase: "pig.ef_rows",
                    limit: 0,
                    actual: 0,
                });
            }
            // ef_row(i) = defs \ reach(i) \ reach⁻¹(i) \ conflicts(i) \ {i};
            // the engine answers the first three in one query, whichever
            // backend it holds.
            reach.unordered_into(i, &def_mask, &mut self.scratch);
            self.scratch
                .difference_with(&conflict_rows[conflict_idx[i]]);
            for j in self.scratch.iter() {
                // Each unordered pair once: Ef is symmetric.
                if j <= i {
                    continue;
                }
                if let (Some(u), Some(v)) = (def_node[i], def_node[j]) {
                    self.false_edges.add_edge(u, v);
                }
            }
        }

        drop(_ef_span);
        let _asm_span = parsched_telemetry::span(telemetry, "pig.assemble");
        let mut pig = donor.unwrap_or_else(|| Pig::from_parts(UnGraph::new(0), UnGraph::new(0)));
        pig.assemble_from(problem.interference(), &self.false_edges);
        pig.report(problem.len(), telemetry);
        if telemetry.enabled() {
            telemetry.counter("pig.rounds", 1);
        }
        *slot = Some(pig);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched_ir::liveness::Liveness;
    use parsched_ir::{parse_function, BlockId};
    use parsched_machine::presets;
    use parsched_telemetry::NullTelemetry;

    fn edge_set(g: &UnGraph) -> Vec<(usize, usize)> {
        g.edges().collect()
    }

    fn matrix_edge_set(m: &parsched_graph::BitMatrix) -> Vec<(usize, usize)> {
        m.edges().collect()
    }

    fn must<T, E: std::fmt::Debug>(r: Result<T, E>) -> T {
        match r {
            Ok(v) => v,
            Err(e) => unreachable!("test input is fixed and valid: {e:?}"),
        }
    }

    #[test]
    fn session_pig_matches_from_scratch_pig() {
        let f = must(parse_function(
            r#"
            func @f(s0) {
            entry:
                s1 = load [s0 + 0]
                s2 = load [s0 + 8]
                s3 = fadd s1, s2
                s4 = add s1, 1
                s5 = mul s4, s3
                ret s5
            }
            "#,
        ));
        for m in [presets::paper_machine(4), presets::single_issue(4)] {
            let lv = Liveness::compute(&f, &[]);
            let problem = must(BlockAllocProblem::build(&f, BlockId(0), &lv));
            let deps = DepGraph::build(&f.blocks()[0], &NullTelemetry);
            let reference = Pig::build(&problem, &deps, &m, &NullTelemetry);

            let mut sess = AllocSession::new();
            assert!(sess.begin(&f.blocks()[0], &NullTelemetry).is_ok());
            let Ok(Some(pig)) = sess.build_pig(&problem, &m, &NullTelemetry) else {
                unreachable!("session was begun, PIG must build")
            };

            assert_eq!(edge_set(pig.graph()), edge_set(reference.graph()));
            assert_eq!(
                matrix_edge_set(pig.false_only()),
                matrix_edge_set(reference.false_only())
            );
            assert_eq!(
                matrix_edge_set(pig.shared()),
                matrix_edge_set(reference.shared())
            );
        }
    }

    #[test]
    fn build_pig_without_begin_returns_none() {
        let f = must(parse_function(
            "func @g() {\nentry:\n    s0 = li 1\n    ret s0\n}",
        ));
        let lv = Liveness::compute(&f, &[]);
        let problem = must(BlockAllocProblem::build(&f, BlockId(0), &lv));
        let mut sess = AllocSession::new();
        assert!(matches!(
            sess.build_pig(&problem, &presets::paper_machine(4), &NullTelemetry),
            Ok(None)
        ));
    }

    #[test]
    fn expired_deadline_trips_begin() {
        let f = must(parse_function(
            "func @g() {\nentry:\n    s0 = li 1\n    ret s0\n}",
        ));
        let mut sess = AllocSession::new();
        sess.set_deadline(Some(Instant::now() - std::time::Duration::from_millis(1)));
        // Tiny blocks finish inside one poll stride, so begin may succeed;
        // what matters is that an error, when reported, is the deadline
        // form (limit/actual both zero) and the session stays usable.
        if let Err(e) = sess.begin(&f.blocks()[0], &NullTelemetry) {
            assert_eq!((e.limit, e.actual), (0, 0));
        }
        sess.set_deadline(None);
        assert!(sess.begin(&f.blocks()[0], &NullTelemetry).is_ok());
    }
}
