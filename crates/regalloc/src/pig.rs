//! The parallelizable interference graph (PIG).
//!
//! `G = (V, E)` with `V = Vr` (the allocation vertices) and
//! `E = Er ∪ { {u,v} : {u,v} ∈ Ef and u,v ∈ V }` — the union of the
//! interference graph and the false-dependence graph restricted to
//! defining vertices. Theorem 1: an optimal coloring of `G` is a spill-free
//! register allocation whose scheduling graph has no false dependence.
//! Theorem 2: `G` is minimal with that property.

use crate::problem::BlockAllocProblem;
use parsched_graph::{BitMatrix, UnGraph};
use parsched_machine::MachineDesc;
use parsched_sched::falsedep::false_dependence_graph;
use parsched_sched::DepGraph;

/// A PIG: the combined graph plus bookkeeping about which edges came from
/// where (needed by the combined allocator's heuristics, Lemmas 2/3).
#[derive(Debug, Clone)]
pub struct Pig {
    graph: UnGraph,
    interference_only: BitMatrix,
    false_only: BitMatrix,
    shared: BitMatrix,
}

impl Pig {
    /// Builds the PIG for `problem` on `machine`.
    ///
    /// # Examples
    ///
    /// ```
    /// use parsched_ir::liveness::Liveness;
    /// use parsched_ir::{parse_function, BlockId};
    /// use parsched_machine::presets;
    /// use parsched_regalloc::{BlockAllocProblem, Pig};
    /// use parsched_sched::DepGraph;
    /// use parsched_telemetry::NullTelemetry;
    ///
    /// let f = parse_function(
    ///     "func @f(s0) {\nentry:\n    s1 = add s0, 1\n    s2 = fadd s0, 2\n    s3 = add s1, s2\n    ret s3\n}",
    /// )?;
    /// let lv = Liveness::compute(&f, &[]);
    /// let problem = BlockAllocProblem::build(&f, BlockId(0), &lv)?;
    /// let deps = DepGraph::build(f.block(BlockId(0)), &NullTelemetry);
    /// let pig = Pig::build(&problem, &deps, &presets::paper_machine(8), &NullTelemetry);
    /// // The PIG contains at least the interference edges.
    /// assert!(pig.graph().edge_count() >= problem.interference().edge_count());
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// `deps` must be the dependence graph of the same block built from
    /// *symbolic* code. An `Ef` edge between two defining instructions
    /// becomes an edge between their definition vertices; `Ef` edges
    /// touching non-defining instructions (stores, branch inputs) have no
    /// allocation counterpart and are dropped, per the paper's `u, v ∈ V`
    /// restriction.
    ///
    /// Construction statistics are reported to `telemetry`: node/edge
    /// counts per class (`pig.*`) and the maximum PIG degree.
    pub fn build(
        problem: &BlockAllocProblem,
        deps: &DepGraph,
        machine: &MachineDesc,
        telemetry: &dyn parsched_telemetry::Telemetry,
    ) -> Pig {
        let _span = parsched_telemetry::span(telemetry, "pig.build");
        let ef = false_dependence_graph(deps, machine, &parsched_telemetry::NullTelemetry);
        let n = problem.len();
        let er = problem.interference();

        let mut false_edges = UnGraph::new(n);
        for (i, j) in ef.edges() {
            if let (Some(u), Some(v)) = (problem.node_defined_at(i), problem.node_defined_at(j)) {
                false_edges.add_edge(u, v);
            }
        }
        let pig = Pig::from_parts(er.clone(), false_edges);
        pig.report(n, telemetry);
        pig
    }

    pub(crate) fn report(&self, n: usize, telemetry: &dyn parsched_telemetry::Telemetry) {
        if telemetry.enabled() {
            telemetry.counter("pig.nodes", n as u64);
            telemetry.counter("pig.edges", self.graph.edge_count() as u64);
            telemetry.counter(
                "pig.interference_only_edges",
                (self.interference_only.count() / 2) as u64,
            );
            telemetry.counter("pig.false_only_edges", (self.false_only.count() / 2) as u64);
            telemetry.counter("pig.shared_edges", (self.shared.count() / 2) as u64);
            let max_degree = (0..n).map(|v| self.graph.degree(v)).max().unwrap_or(0);
            telemetry.gauge("pig.max_degree", max_degree as u64);
        }
    }

    /// Assembles a PIG from an interference graph `Er` and a
    /// false-dependence edge set `Ef` over the *same* vertex set — the
    /// entry point for the global (web-based) construction.
    ///
    /// # Panics
    /// Panics if node counts differ.
    pub fn from_parts(er: UnGraph, false_edges: UnGraph) -> Pig {
        let mut pig = Pig {
            graph: UnGraph::new(0),
            interference_only: BitMatrix::new(0),
            false_only: BitMatrix::new(0),
            shared: BitMatrix::new(0),
        };
        pig.assemble_from(&er, &false_edges);
        pig
    }

    /// Rebuilds `self` as the PIG of `er` ∪ `false_edges` in place, reusing
    /// the previous round's buffers. Produces exactly the same graphs (same
    /// neighbor orders) as [`Pig::from_parts`] on the same inputs; the spill
    /// loop calls this once per round, so avoiding the four-graph
    /// reallocation is worth the in-place contract.
    ///
    /// # Panics
    /// Panics if node counts differ.
    pub fn assemble_from(&mut self, er: &UnGraph, false_edges: &UnGraph) {
        assert_eq!(
            er.node_count(),
            false_edges.node_count(),
            "Er and Ef must share a vertex set"
        );
        let n = er.node_count();
        self.graph.clone_from(er);
        for (u, v) in false_edges.edges() {
            self.graph.add_edge(u, v);
        }

        self.interference_only.reset(n);
        self.false_only.reset(n);
        self.shared.reset(n);
        // The three classes are row-wise boolean combinations of the two
        // adjacency relations, so classification runs a word at a time with
        // no per-edge probes.
        for v in 0..n {
            let er_row = er.row(v);
            let ef_row = false_edges.row(v);
            let row = self.shared.row_mut(v);
            row.clone_from(er_row);
            row.intersect_with(ef_row);
            let row = self.interference_only.row_mut(v);
            row.clone_from(er_row);
            row.difference_with(ef_row);
            let row = self.false_only.row_mut(v);
            row.clone_from(ef_row);
            row.difference_with(er_row);
        }
    }

    /// The combined graph `G`.
    pub fn graph(&self) -> &UnGraph {
        &self.graph
    }

    /// Adjacency of edges in `Er` only (pure interference; removing one may
    /// cause a spill but cannot lose parallelism — the dual of Lemma 2).
    pub fn interference_only(&self) -> &BitMatrix {
        &self.interference_only
    }

    /// Adjacency of edges in `Ef` only (pure parallelism; Lemma 2 — merging
    /// the two definitions cannot spill but restricts the scheduler).
    pub fn false_only(&self) -> &BitMatrix {
        &self.false_only
    }

    /// Adjacency of edges in both `Er` and `Ef` (Lemma 3 — keeping them
    /// separate both prevents a spill *and* preserves parallelism; never
    /// remove these).
    pub fn shared(&self) -> &BitMatrix {
        &self.shared
    }

    /// Degree of `v` counting only interference edges (`Er`), the quantity
    /// the combined algorithm's second simplify loop tests.
    pub fn interference_degree(&self, v: usize) -> usize {
        self.interference_only.row(v).count() + self.shared.row(v).count()
    }
}

/// The paper's *augmented* parallelizable interference graph: vertices are
/// **all** body instructions (`V = Vs`), not just definitions, with both
/// interference edges (lifted to the defining instructions) and
/// false-dependence edges. The augmentation does not take part in coloring;
/// its purpose is the scheduler-facing query the paper describes — "at each
/// node v the edges {v, u} ∈ Ef provide the list of available instructions
/// (with v) as used in list scheduling algorithms".
#[derive(Debug, Clone)]
pub struct AugmentedPig {
    ef: UnGraph,
    interference_insts: UnGraph,
}

impl AugmentedPig {
    /// Builds the augmented graph for a block, reporting `Ef` construction
    /// statistics to `telemetry`.
    pub fn build(
        problem: &BlockAllocProblem,
        deps: &DepGraph,
        machine: &MachineDesc,
        telemetry: &dyn parsched_telemetry::Telemetry,
    ) -> AugmentedPig {
        let n = deps.len();
        let ef = false_dependence_graph(deps, machine, telemetry);
        // Lift Er onto instructions: an interference edge between two
        // in-block definitions becomes an edge between their instructions.
        let mut interference_insts = UnGraph::new(n);
        for (u, v) in problem.interference().edges() {
            if let (Some(i), Some(j)) = (problem.def_site(u), problem.def_site(v)) {
                interference_insts.add_edge(i, j);
            }
        }
        AugmentedPig {
            ef,
            interference_insts,
        }
    }

    /// Number of instruction vertices.
    pub fn len(&self) -> usize {
        self.ef.node_count()
    }

    /// Whether the block body is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The combined edge set over instructions (`Er` lifted ∪ `Ef`).
    pub fn graph(&self) -> UnGraph {
        self.interference_insts.union(&self.ef)
    }

    /// The instructions that may issue in the same cycle as `v` — the
    /// paper's available list for list scheduling.
    pub fn available_with(&self, v: usize) -> &[usize] {
        self.ef.neighbors(v)
    }

    /// Whether instructions `u` and `v` may share an issue cycle.
    pub fn can_pair(&self, u: usize, v: usize) -> bool {
        self.ef.has_edge(u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched_graph::coloring::{exact_chromatic_number, ExactLimits};
    use parsched_ir::liveness::Liveness;
    use parsched_ir::{parse_function, BlockId, Reg};
    use parsched_machine::presets;

    fn setup(src: &str) -> (parsched_ir::Function, BlockAllocProblem, DepGraph) {
        let f = parse_function(src).unwrap();
        let lv = Liveness::compute(&f, &[]);
        let p = BlockAllocProblem::build(&f, BlockId(0), &lv).unwrap();
        let d = DepGraph::build(&f.blocks()[0], &parsched_telemetry::NullTelemetry);
        (f, p, d)
    }

    const EXAMPLE1: &str = r#"
        func @ex1(s9) {
        entry:
            s1 = load [@z + 0]
            s2 = fadd s9, 0
            s3 = load [s2 + 0]
            s4 = add s1, s1
            s5 = mul s3, s1
            ret s5
        }
    "#;

    #[test]
    fn example1_pig_needs_three_colors() {
        // Figure 3: the parallelizable interference graph of Example 1
        // admits a 3-register allocation.
        let (_f, p, d) = setup(EXAMPLE1);
        let m = presets::paper_machine(8);
        let pig = Pig::build(&p, &d, &m, &parsched_telemetry::NullTelemetry);
        let chrom = exact_chromatic_number(pig.graph(), &ExactLimits::default()).unwrap();
        assert_eq!(chrom, 3);
    }

    #[test]
    fn example1_pig_adds_false_edges() {
        let (_f, p, d) = setup(EXAMPLE1);
        let m = presets::paper_machine(8);
        let pig = Pig::build(&p, &d, &m, &parsched_telemetry::NullTelemetry);
        let n = |r: u32| p.node_of(Reg::sym(r)).unwrap();
        // The false-dependence pairs {s1,s2}, {s2,s4}, {s3,s4} appear.
        assert!(pig.graph().has_edge(n(1), n(2)));
        assert!(pig.graph().has_edge(n(2), n(4)));
        assert!(pig.graph().has_edge(n(3), n(4)));
        // {s1,s2} is also an interference edge → shared (Lemma 3).
        assert!(pig.shared().get(n(1), n(2)));
        // {s2,s4}: s2 dead by s4's def → false-only (Lemma 2).
        assert!(pig.false_only().get(n(2), n(4)));
        // Interference degree excludes false-only edges.
        assert_eq!(
            pig.interference_degree(n(2)),
            pig.graph().degree(n(2)) - pig.false_only().row(n(2)).count()
        );
    }

    #[test]
    fn single_issue_pig_equals_interference_graph() {
        // No parallelism → Ef empty → PIG is exactly Gr.
        let (_f, p, d) = setup(EXAMPLE1);
        let m = presets::single_issue(8);
        let pig = Pig::build(&p, &d, &m, &parsched_telemetry::NullTelemetry);
        assert_eq!(pig.graph().edge_count(), p.interference().edge_count());
        assert_eq!(pig.false_only().count(), 0);
    }

    #[test]
    fn live_in_vertices_carry_no_false_edges() {
        let (_f, p, d) = setup(
            r#"
            func @li(s0, s1) {
            entry:
                s2 = add s0, 1
                s3 = fadd s1, 1
                s4 = add s2, s2
                ret s4
            }
            "#,
        );
        let m = presets::paper_machine(8);
        let pig = Pig::build(&p, &d, &m, &parsched_telemetry::NullTelemetry);
        let s0 = p.node_of(Reg::sym(0)).unwrap();
        let s1 = p.node_of(Reg::sym(1)).unwrap();
        assert_eq!(pig.false_only().row(s0).count(), 0);
        assert_eq!(pig.false_only().row(s1).count(), 0);
        // But they do interfere with each other (both live-in).
        assert!(pig.interference_only().get(s0, s1));
    }

    #[test]
    fn augmented_pig_available_lists_match_figure2() {
        // Example 1's available pairs are the three Ef edges.
        let (_f, p, d) = setup(EXAMPLE1);
        let m = presets::paper_machine(8);
        let aug = AugmentedPig::build(&p, &d, &m, &parsched_telemetry::NullTelemetry);
        assert_eq!(aug.len(), 5);
        assert!(aug.can_pair(0, 1), "load z ∥ s2");
        assert!(aug.can_pair(1, 3), "s2 ∥ add");
        assert!(aug.can_pair(2, 3), "load a[i] ∥ add");
        assert!(!aug.can_pair(0, 2), "loads share the fetch unit");
        assert_eq!(aug.available_with(3).len(), 2);
        // Interference lifts onto instructions: s1 (inst 0) vs s3 (inst 2).
        assert!(aug.graph().has_edge(0, 2));
    }

    #[test]
    fn augmented_pig_same_cycle_pairs_are_available() {
        // Any two instructions the list scheduler issues in one cycle must
        // be in each other's available lists.
        use parsched_sched::list_schedule;
        let (f, p, d) = setup(EXAMPLE1);
        let m = presets::paper_machine(8);
        let aug = AugmentedPig::build(&p, &d, &m, &parsched_telemetry::NullTelemetry);
        let s = list_schedule(
            &f.blocks()[0],
            &d,
            &m,
            parsched_sched::SchedPriority::CriticalPath,
            &parsched_telemetry::NullTelemetry,
        )
        .unwrap();
        for (_, group) in s.groups() {
            for (a, &u) in group.iter().enumerate() {
                for &v in &group[a + 1..] {
                    assert!(
                        aug.can_pair(u, v),
                        "scheduler paired {u} and {v} outside Ef"
                    );
                }
            }
        }
    }

    #[test]
    fn pig_chromatic_at_least_interference_chromatic() {
        // PIG ⊇ Gr, so χ(PIG) ≥ χ(Gr) always.
        let (_f, p, d) = setup(EXAMPLE1);
        let m = presets::paper_machine(8);
        let pig = Pig::build(&p, &d, &m, &parsched_telemetry::NullTelemetry);
        let lim = ExactLimits::default();
        let chrom_gr = exact_chromatic_number(p.interference(), &lim).unwrap();
        let chrom_pig = exact_chromatic_number(pig.graph(), &lim).unwrap();
        assert!(chrom_pig >= chrom_gr);
    }
}
