//! The paper's combined coloring procedure (Section 4).
//!
//! Works on the parallelizable interference graph. When registers suffice,
//! plain simplification colors the PIG and — by Theorem 1 — the allocation
//! keeps every parallel-scheduling option. Under pressure the algorithm
//! trades: first it *removes false-dependence edges* ("we are doing the job
//! of the scheduler when, due to register pressure, some parallelization
//! options are given away"), guided by scheduling priorities; only when no
//! profitable removal remains does it *spill*, choosing the victim by the
//! weighted metric `h*(v) = cost(v) / Σ w({u,v})`.

use crate::pig::Pig;
use parsched_graph::BitSet;

/// How the allocator picks which false-dependence edge to sacrifice when
/// register pressure blocks simplification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EdgeRemovalPolicy {
    /// Remove the edge whose two instructions have the smallest combined
    /// scheduling priority (critical-path height) — the paper's suggestion:
    /// give up the parallelism the scheduler would value least.
    LeastBenefit,
    /// Remove an arbitrary (deterministic pseudo-random) eligible edge —
    /// ablation baseline showing the value of scheduling guidance.
    Pseudorandom {
        /// Seed for the internal generator.
        seed: u64,
    },
    /// Remove the eligible edge incident to the node closest to becoming
    /// simplifiable (smallest excess degree) — a pure graph heuristic.
    DegreeRelief,
}

/// The spill-victim metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpillMetric {
    /// Classic `h(v) = cost(v) / deg(v)` over the full PIG degree.
    CostOverDegree,
    /// The paper's `h*(v) = cost(v) / Σ w({u,v})` with per-class weights.
    HStar {
        /// Weight of interference-only edges (prevent spills; Lemma 2 dual).
        interference_weight: f64,
        /// Weight of edges in both graphs (Lemma 3: most valuable).
        shared_weight: f64,
        /// Weight of false-dependence-only edges (pure parallelism). With
        /// `0.0` this degenerates to the traditional `h` function, as the
        /// paper notes.
        parallel_weight: f64,
    },
}

/// Configuration of the combined allocator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PinterConfig {
    /// False-edge removal policy under pressure.
    pub edge_policy: EdgeRemovalPolicy,
    /// Spill metric.
    pub spill_metric: SpillMetric,
    /// Run the EP pre-scheduling reordering before measuring live ranges.
    pub ep_prepass: bool,
}

impl Default for PinterConfig {
    /// The paper's recommended configuration: least-benefit edge removal,
    /// `h*` with parallelism valued above spill avoidance ("parallelism
    /// that will eventually materialize is preferred over the cost of
    /// spilling some extra value"), and the EP pre-pass on.
    fn default() -> Self {
        PinterConfig {
            edge_policy: EdgeRemovalPolicy::LeastBenefit,
            spill_metric: SpillMetric::HStar {
                interference_weight: 1.0,
                shared_weight: 2.0,
                parallel_weight: 1.5,
            },
            ep_prepass: true,
        }
    }
}

/// Result of one run of the combined coloring procedure.
#[derive(Debug, Clone, PartialEq)]
pub struct CombinedOutcome {
    /// Per-node colors (`u32::MAX` for spilled nodes).
    pub colors: Vec<u32>,
    /// Nodes placed on the spill list.
    pub spilled: Vec<usize>,
    /// False-dependence edges removed (parallelism given away), as node
    /// pairs.
    pub removed_false_edges: Vec<(usize, usize)>,
}

impl CombinedOutcome {
    /// Number of distinct colors used.
    pub fn colors_used(&self) -> u32 {
        self.colors
            .iter()
            .filter(|&&c| c != u32::MAX)
            .map(|&c| c + 1)
            .max()
            .unwrap_or(0)
    }
}

/// Runs the paper's coloring procedure on `pig` with `k` registers,
/// reporting its decisions to `telemetry`: `combined.simplified` (nodes
/// simplified), `combined.removed_false_edges` (parallelism given away),
/// `combined.spilled` (spill-list length), and a `combined.spill` event per
/// victim.
///
/// `costs[n]` is the spill cost of node `n`; `priority[n]` is the
/// scheduling priority of the node's defining instruction (critical-path
/// height; 0 for live-in values).
///
/// The procedure keeps per-node degree counters split into interference
/// and removable-false-edge components, so every simplify/save/spill
/// decision is O(n) per round rather than O(n·deg); decisions are
/// tie-broken identically to the reference formulation.
///
/// # Panics
/// Panics if `costs` or `priority` lengths differ from the node count.
pub fn combined_color(
    pig: &Pig,
    k: u32,
    costs: &[f64],
    priority: &[u32],
    config: &PinterConfig,
    telemetry: &dyn parsched_telemetry::Telemetry,
) -> CombinedOutcome {
    let _span = parsched_telemetry::span(telemetry, "combined.color");
    let n = pig.graph().node_count();
    assert_eq!(costs.len(), n, "one cost per node");
    assert_eq!(priority.len(), n, "one priority per node");

    // Working copies of the adjacency rows: the full graph and the
    // still-removable false edges. Node removal only flips `alive` and
    // adjusts neighbor counters; the rows themselves lose bits only on
    // false-edge removal, so the select phase sees exactly the surviving
    // edge set.
    let mut work_rows: Vec<BitSet> = (0..n).map(|v| pig.graph().row(v).clone()).collect();
    let mut false_rows: Vec<BitSet> = (0..n).map(|v| pig.false_only().row(v).clone()).collect();
    let mut alive = BitSet::new(n);
    alive.fill();
    // inter_deg[v]: alive neighbors over non-removable (interference or
    // shared) edges; falive_deg[v]: alive neighbors over removable false
    // edges. Current degree is their sum.
    let mut inter_deg: Vec<usize> = (0..n)
        .map(|v| pig.graph().degree(v) - pig.false_only().degree(v))
        .collect();
    let mut falive_deg: Vec<usize> = (0..n).map(|v| pig.false_only().degree(v)).collect();

    let mut stack: Vec<usize> = Vec::with_capacity(n);
    let mut spilled: Vec<usize> = Vec::new();
    let mut removed_edges: Vec<(usize, usize)> = Vec::new();
    let mut rng_state = match config.edge_policy {
        EdgeRemovalPolicy::Pseudorandom { seed } => seed | 1,
        _ => 1,
    };
    let mut scratch = BitSet::new(n);

    let mut remaining = n;
    while remaining > 0 {
        // Simplify: remove nodes of degree < k (smallest degree first,
        // ties by node id).
        let pick = alive
            .iter()
            .filter(|&v| inter_deg[v] + falive_deg[v] < k as usize)
            .min_by_key(|&v| (inter_deg[v] + falive_deg[v], v));
        if let Some(v) = pick {
            remove_node(
                v,
                &mut alive,
                &work_rows,
                &false_rows,
                &mut inter_deg,
                &mut falive_deg,
                &mut scratch,
            );
            stack.push(v);
            remaining -= 1;
            continue;
        }

        // Blocked. A node is *savable* when its interference degree alone
        // is below k and at least one removable false edge touches it (the
        // paper's second loop); removing such an edge can free it.
        let mut chosen: Option<(usize, usize)> = None;
        match config.edge_policy {
            EdgeRemovalPolicy::LeastBenefit => {
                let mut best: Option<(u32, usize, usize)> = None;
                for_each_eligible(&alive, &false_rows, &inter_deg, &falive_deg, k, |a, b| {
                    let key = (priority[a].saturating_add(priority[b]), a, b);
                    if best.is_none_or(|cur| key < cur) {
                        best = Some(key);
                    }
                });
                chosen = best.map(|(_, a, b)| (a, b));
            }
            EdgeRemovalPolicy::Pseudorandom { .. } => {
                let mut eligible: Vec<(usize, usize)> = Vec::new();
                for_each_eligible(&alive, &false_rows, &inter_deg, &falive_deg, k, |a, b| {
                    eligible.push((a, b));
                });
                if !eligible.is_empty() {
                    // xorshift64*
                    rng_state ^= rng_state << 13;
                    rng_state ^= rng_state >> 7;
                    rng_state ^= rng_state << 17;
                    chosen = Some(eligible[(rng_state as usize) % eligible.len()]);
                }
            }
            EdgeRemovalPolicy::DegreeRelief => {
                let mut best: Option<(usize, usize, usize)> = None;
                for_each_eligible(&alive, &false_rows, &inter_deg, &falive_deg, k, |a, b| {
                    let da = inter_deg[a] + falive_deg[a];
                    let db = inter_deg[b] + falive_deg[b];
                    let key = (da.min(db), a, b);
                    if best.is_none_or(|cur| key < cur) {
                        best = Some(key);
                    }
                });
                chosen = best.map(|(_, a, b)| (a, b));
            }
        }
        if let Some((a, b)) = chosen {
            work_rows[a].remove(b);
            work_rows[b].remove(a);
            false_rows[a].remove(b);
            false_rows[b].remove(a);
            falive_deg[a] -= 1;
            falive_deg[b] -= 1;
            removed_edges.push((a, b));
            continue;
        }

        // No savable node: spill by the configured metric. Edge classes are
        // read from the *original* PIG (a removed false edge is gone from
        // the working rows, so it no longer contributes weight).
        let weight_sum = |v: usize, scratch: &mut BitSet| -> f64 {
            scratch.clone_from(&work_rows[v]);
            scratch.intersect_with(&alive);
            match config.spill_metric {
                SpillMetric::CostOverDegree => scratch.count() as f64,
                SpillMetric::HStar {
                    interference_weight,
                    shared_weight,
                    parallel_weight,
                } => scratch
                    .iter()
                    .map(|u| {
                        if pig.shared().has_edge(v, u) {
                            shared_weight
                        } else if pig.false_only().has_edge(v, u) {
                            parallel_weight
                        } else {
                            interference_weight
                        }
                    })
                    .sum(),
            }
        };
        // `remaining > 0` guarantees an unremoved node; `else break` states
        // that invariant without a panic path, and `total_cmp` orders NaN
        // metrics deterministically.
        let mut victim: Option<(usize, f64)> = None;
        for v in alive.iter() {
            let h = costs[v] / weight_sum(v, &mut scratch).max(f64::MIN_POSITIVE);
            let better = match victim {
                None => true,
                Some((_, hb)) => h.total_cmp(&hb).is_lt(),
            };
            if better {
                victim = Some((v, h));
            }
        }
        let Some((victim, _)) = victim else {
            break;
        };
        remove_node(
            victim,
            &mut alive,
            &work_rows,
            &false_rows,
            &mut inter_deg,
            &mut falive_deg,
            &mut scratch,
        );
        if telemetry.enabled() {
            telemetry.event("combined.spill", &format!("node {victim}"));
        }
        spilled.push(victim);
        remaining -= 1;
        // The paper places spill victims on the spill list, not the select
        // stack: after spilling, the whole procedure repeats on rewritten
        // code, so optimistic coloring of the victim is not attempted.
    }

    // Select (only meaningful when nothing spilled, matching the paper;
    // still performed so callers can inspect partial colorings).
    let mut colors = vec![u32::MAX; n];
    for &v in stack.iter().rev() {
        let mut used = vec![false; k as usize];
        for u in work_rows[v].iter() {
            if colors[u] != u32::MAX {
                used[colors[u] as usize] = true;
            }
        }
        match (0..k).find(|&c| !used[c as usize]) {
            Some(c) => colors[v] = c,
            // Simplified nodes have degree < k at removal time, so a free
            // color always exists; if that invariant ever broke, spilling
            // the node degrades the result instead of crashing the process.
            None => spilled.push(v),
        }
    }
    spilled.sort_unstable();
    if telemetry.enabled() {
        telemetry.counter("combined.simplified", stack.len() as u64);
        telemetry.counter("combined.removed_false_edges", removed_edges.len() as u64);
        telemetry.counter("combined.spilled", spilled.len() as u64);
    }
    CombinedOutcome {
        colors,
        spilled,
        removed_false_edges: removed_edges,
    }
}

/// Marks `v` dead and repairs its alive neighbors' split degree counters.
/// Adjacency rows are left intact: the select phase needs the surviving
/// edge set over *all* nodes.
fn remove_node(
    v: usize,
    alive: &mut BitSet,
    work_rows: &[BitSet],
    false_rows: &[BitSet],
    inter_deg: &mut [usize],
    falive_deg: &mut [usize],
    scratch: &mut BitSet,
) {
    alive.remove(v);
    scratch.clone_from(&work_rows[v]);
    scratch.intersect_with(alive);
    for u in scratch.iter() {
        if false_rows[v].contains(u) {
            falive_deg[u] -= 1;
        } else {
            inter_deg[u] -= 1;
        }
    }
}

/// Calls `f(a, b)` (canonical `a < b`) for every removable false edge whose
/// savable endpoint makes it eligible, in ascending savable-node order —
/// the same enumeration order as the reference formulation (an edge with
/// two savable endpoints is visited twice, as before).
fn for_each_eligible(
    alive: &BitSet,
    false_rows: &[BitSet],
    inter_deg: &[usize],
    falive_deg: &[usize],
    k: u32,
    mut f: impl FnMut(usize, usize),
) {
    for v in alive.iter() {
        if inter_deg[v] >= k as usize || falive_deg[v] == 0 {
            continue;
        }
        for u in false_rows[v].iter() {
            if alive.contains(u) {
                if v < u {
                    f(v, u);
                } else {
                    f(u, v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::BlockAllocProblem;
    use parsched_ir::liveness::Liveness;
    use parsched_ir::{parse_function, BlockId};
    use parsched_machine::presets;
    use parsched_sched::DepGraph;

    fn pig_of(
        src: &str,
        machine: &parsched_machine::MachineDesc,
    ) -> (BlockAllocProblem, Pig, Vec<f64>, Vec<u32>) {
        let f = parse_function(src).unwrap();
        let lv = Liveness::compute(&f, &[]);
        let p = BlockAllocProblem::build(&f, BlockId(0), &lv).unwrap();
        let d = DepGraph::build(&f.blocks()[0], &parsched_telemetry::NullTelemetry);
        let pig = Pig::build(&p, &d, machine, &parsched_telemetry::NullTelemetry);
        let costs: Vec<f64> = (0..p.len()).map(|n| p.spill_cost(n)).collect();
        let heights = d.heights(machine).unwrap();
        let priority: Vec<u32> = (0..p.len())
            .map(|n| p.def_site(n).map_or(0, |i| heights[i]))
            .collect();
        (p, pig, costs, priority)
    }

    const EXAMPLE1: &str = r#"
        func @ex1(s9) {
        entry:
            s1 = load [@z + 0]
            s2 = fadd s9, 0
            s3 = load [s2 + 0]
            s4 = add s1, s1
            s5 = mul s3, s1
            ret s5
        }
    "#;

    #[test]
    fn enough_registers_no_spill_no_removal() {
        let m = presets::paper_machine(8);
        let (_p, pig, costs, prio) = pig_of(EXAMPLE1, &m);
        let out = combined_color(
            &pig,
            8,
            &costs,
            &prio,
            &PinterConfig::default(),
            &parsched_telemetry::NullTelemetry,
        );
        assert!(out.spilled.is_empty());
        assert!(out.removed_false_edges.is_empty());
        assert!(pig.graph().is_proper_coloring(&out.colors));
        assert!(out.colors_used() <= 4);
    }

    #[test]
    fn example1_three_registers_suffice() {
        let m = presets::paper_machine(3);
        let (_p, pig, costs, prio) = pig_of(EXAMPLE1, &m);
        let out = combined_color(
            &pig,
            3,
            &costs,
            &prio,
            &PinterConfig::default(),
            &parsched_telemetry::NullTelemetry,
        );
        assert!(out.spilled.is_empty(), "paper: 3 registers, no spill");
        assert!(pig.graph().is_proper_coloring(&out.colors));
    }

    #[test]
    fn pressure_removes_false_edges_before_spilling() {
        // With 2 registers, Example 1 cannot keep all parallelism (the PIG
        // has a triangle), but interference alone is 2-colorable only if…
        // actually Gr has triangle s1-s3-s4 too, so 2 registers force a
        // spill; with 3 registers but a denser false set, edges go first.
        // Use a block whose Gr is 2-colorable but PIG needs 3:
        let m = presets::paper_machine(2);
        let src = r#"
            func @p(s8, s9) {
            entry:
                s1 = add s8, 1
                s2 = fadd s9, 1
                s3 = add s1, 1
                s4 = fadd s2, 1
                s5 = add s3, s3
                s6 = fadd s4, s4
                ret s6
            }
        "#;
        let (_p, pig, costs, prio) = pig_of(src, &m);
        let out = combined_color(
            &pig,
            2,
            &costs,
            &prio,
            &PinterConfig::default(),
            &parsched_telemetry::NullTelemetry,
        );
        // Int and float chains interleave: Gr is small, false edges connect
        // the chains. Two registers must cost parallelism, not spills.
        assert!(
            !out.removed_false_edges.is_empty(),
            "expected false-edge removal under pressure"
        );
        assert!(out.spilled.is_empty(), "no spill needed: {out:?}");
    }

    #[test]
    fn hopeless_pressure_spills() {
        // Three mutually-interfering live-in values + 1 register: spill.
        let m = presets::paper_machine(1);
        let src = r#"
            func @s(s0, s1, s2) {
            entry:
                s3 = add s0, s1
                s4 = add s3, s2
                ret s4
            }
        "#;
        let (_p, pig, costs, prio) = pig_of(src, &m);
        let out = combined_color(
            &pig,
            1,
            &costs,
            &prio,
            &PinterConfig::default(),
            &parsched_telemetry::NullTelemetry,
        );
        assert!(!out.spilled.is_empty());
    }

    #[test]
    fn policies_are_deterministic() {
        let m = presets::paper_machine(2);
        let (_p, pig, costs, prio) = pig_of(EXAMPLE1, &m);
        for policy in [
            EdgeRemovalPolicy::LeastBenefit,
            EdgeRemovalPolicy::Pseudorandom { seed: 42 },
            EdgeRemovalPolicy::DegreeRelief,
        ] {
            let cfg = PinterConfig {
                edge_policy: policy,
                ..PinterConfig::default()
            };
            let a = combined_color(
                &pig,
                2,
                &costs,
                &prio,
                &cfg,
                &parsched_telemetry::NullTelemetry,
            );
            let b = combined_color(
                &pig,
                2,
                &costs,
                &prio,
                &cfg,
                &parsched_telemetry::NullTelemetry,
            );
            assert_eq!(a, b, "{policy:?} must be deterministic");
        }
    }

    #[test]
    fn hstar_with_zero_parallel_weight_matches_h_shape() {
        // Sanity: the metric degenerates without panicking and picks a
        // victim with minimal cost/degree on a clique.
        let m = presets::paper_machine(1);
        let src = r#"
            func @s(s0, s1, s2) {
            entry:
                s3 = add s0, s1
                s4 = add s3, s2
                ret s4
            }
        "#;
        let (_p, pig, costs, prio) = pig_of(src, &m);
        let cfg = PinterConfig {
            spill_metric: SpillMetric::HStar {
                interference_weight: 1.0,
                shared_weight: 1.0,
                parallel_weight: 0.0,
            },
            ..PinterConfig::default()
        };
        let out = combined_color(
            &pig,
            1,
            &costs,
            &prio,
            &cfg,
            &parsched_telemetry::NullTelemetry,
        );
        assert!(!out.spilled.is_empty());
    }
}
