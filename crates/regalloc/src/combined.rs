//! The paper's combined coloring procedure (Section 4).
//!
//! Works on the parallelizable interference graph. When registers suffice,
//! plain simplification colors the PIG and — by Theorem 1 — the allocation
//! keeps every parallel-scheduling option. Under pressure the algorithm
//! trades: first it *removes false-dependence edges* ("we are doing the job
//! of the scheduler when, due to register pressure, some parallelization
//! options are given away"), guided by scheduling priorities; only when no
//! profitable removal remains does it *spill*, choosing the victim by the
//! weighted metric `h*(v) = cost(v) / Σ w({u,v})`.

use crate::pig::Pig;
use parsched_graph::BitSet;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How the allocator picks which false-dependence edge to sacrifice when
/// register pressure blocks simplification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EdgeRemovalPolicy {
    /// Remove the edge whose two instructions have the smallest combined
    /// scheduling priority (critical-path height) — the paper's suggestion:
    /// give up the parallelism the scheduler would value least.
    LeastBenefit,
    /// Remove an arbitrary (deterministic pseudo-random) eligible edge —
    /// ablation baseline showing the value of scheduling guidance.
    Pseudorandom {
        /// Seed for the internal generator.
        seed: u64,
    },
    /// Remove the eligible edge incident to the node closest to becoming
    /// simplifiable (smallest excess degree) — a pure graph heuristic.
    DegreeRelief,
}

/// The spill-victim metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpillMetric {
    /// Classic `h(v) = cost(v) / deg(v)` over the full PIG degree.
    CostOverDegree,
    /// The paper's `h*(v) = cost(v) / Σ w({u,v})` with per-class weights.
    HStar {
        /// Weight of interference-only edges (prevent spills; Lemma 2 dual).
        interference_weight: f64,
        /// Weight of edges in both graphs (Lemma 3: most valuable).
        shared_weight: f64,
        /// Weight of false-dependence-only edges (pure parallelism). With
        /// `0.0` this degenerates to the traditional `h` function, as the
        /// paper notes.
        parallel_weight: f64,
    },
}

/// Configuration of the combined allocator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PinterConfig {
    /// False-edge removal policy under pressure.
    pub edge_policy: EdgeRemovalPolicy,
    /// Spill metric.
    pub spill_metric: SpillMetric,
    /// Run the EP pre-scheduling reordering before measuring live ranges.
    pub ep_prepass: bool,
}

impl Default for PinterConfig {
    /// The paper's recommended configuration: least-benefit edge removal,
    /// `h*` with parallelism valued above spill avoidance ("parallelism
    /// that will eventually materialize is preferred over the cost of
    /// spilling some extra value"), and the EP pre-pass on.
    fn default() -> Self {
        PinterConfig {
            edge_policy: EdgeRemovalPolicy::LeastBenefit,
            spill_metric: SpillMetric::HStar {
                interference_weight: 1.0,
                shared_weight: 2.0,
                parallel_weight: 1.5,
            },
            ep_prepass: true,
        }
    }
}

/// Result of one run of the combined coloring procedure.
#[derive(Debug, Clone, PartialEq)]
pub struct CombinedOutcome {
    /// Per-node colors (`u32::MAX` for spilled nodes).
    pub colors: Vec<u32>,
    /// Nodes placed on the spill list.
    pub spilled: Vec<usize>,
    /// False-dependence edges removed (parallelism given away), as node
    /// pairs.
    pub removed_false_edges: Vec<(usize, usize)>,
}

impl CombinedOutcome {
    /// Number of distinct colors used.
    pub fn colors_used(&self) -> u32 {
        self.colors
            .iter()
            .filter(|&&c| c != u32::MAX)
            .map(|&c| c + 1)
            .max()
            .unwrap_or(0)
    }
}

/// Runs the paper's coloring procedure on `pig` with `k` registers,
/// reporting its decisions to `telemetry`: `combined.simplified` (nodes
/// simplified), `combined.removed_false_edges` (parallelism given away),
/// `combined.spilled` (spill-list length), and a `combined.spill` event per
/// victim.
///
/// `costs[n]` is the spill cost of node `n`; `priority[n]` is the
/// scheduling priority of the node's defining instruction (critical-path
/// height; 0 for live-in values).
///
/// The procedure keeps per-node degree counters split into interference
/// and removable-false-edge components, so every simplify/save/spill
/// decision is O(n) per round rather than O(n·deg); decisions are
/// tie-broken identically to the reference formulation.
///
/// # Panics
/// Panics if `costs` or `priority` lengths differ from the node count.
pub fn combined_color(
    pig: &Pig,
    k: u32,
    costs: &[f64],
    priority: &[u32],
    config: &PinterConfig,
    telemetry: &dyn parsched_telemetry::Telemetry,
) -> CombinedOutcome {
    combined_color_in(
        &mut CombinedWorkspace::default(),
        pig,
        k,
        costs,
        priority,
        config,
        telemetry,
    )
}

/// Reusable buffers for [`combined_color_in`]. The spill loop colors a PIG
/// per round; threading one workspace through makes each round's setup
/// allocation-free once sizes stabilize. A `Default` workspace is valid
/// input, and results never depend on what a previous run left behind.
#[derive(Default)]
pub struct CombinedWorkspace {
    work_rows: Vec<BitSet>,
    false_rows: Vec<BitSet>,
    alive: BitSet,
    inter_deg: Vec<usize>,
    falive_deg: Vec<usize>,
    shared_cnt: Vec<usize>,
    queued: Vec<bool>,
    heap: BinaryHeap<Reverse<u128>>,
    scratch: BitSet,
}

/// Copies `n` rows of `src` into `dst`, reusing `dst`'s buffers.
fn clone_rows_into(dst: &mut Vec<BitSet>, n: usize, src: &parsched_graph::UnGraph) {
    dst.truncate(n);
    for (v, row) in dst.iter_mut().enumerate() {
        row.clone_from(src.row(v));
    }
    for v in dst.len()..n {
        dst.push(src.row(v).clone());
    }
}

/// [`clone_rows_into`] over a [`parsched_graph::BitMatrix`] source.
fn clone_matrix_rows_into(dst: &mut Vec<BitSet>, n: usize, src: &parsched_graph::BitMatrix) {
    dst.truncate(n);
    for (v, row) in dst.iter_mut().enumerate() {
        row.clone_from(src.row(v));
    }
    for v in dst.len()..n {
        dst.push(src.row(v).clone());
    }
}

/// [`combined_color`] with caller-owned scratch buffers.
///
/// # Panics
/// Panics if `costs` or `priority` lengths differ from the node count.
pub fn combined_color_in(
    ws: &mut CombinedWorkspace,
    pig: &Pig,
    k: u32,
    costs: &[f64],
    priority: &[u32],
    config: &PinterConfig,
    telemetry: &dyn parsched_telemetry::Telemetry,
) -> CombinedOutcome {
    let _span = parsched_telemetry::span(telemetry, "combined.color");
    let setup_span = parsched_telemetry::span(telemetry, "combined.setup");
    let n = pig.graph().node_count();
    assert_eq!(costs.len(), n, "one cost per node");
    assert_eq!(priority.len(), n, "one priority per node");

    // Working copies of the adjacency rows: the full graph and the
    // still-removable false edges. Node removal only flips `alive` and
    // adjusts neighbor counters; the rows themselves lose bits only on
    // false-edge removal, so the select phase sees exactly the surviving
    // edge set.
    let work_rows = &mut ws.work_rows;
    let false_rows = &mut ws.false_rows;
    clone_rows_into(work_rows, n, pig.graph());
    clone_matrix_rows_into(false_rows, n, pig.false_only());
    let alive = &mut ws.alive;
    alive.reset(n);
    alive.fill();
    // inter_deg[v]: alive neighbors over non-removable (interference or
    // shared) edges; falive_deg[v]: alive neighbors over removable false
    // edges. Current degree is their sum.
    let inter_deg = &mut ws.inter_deg;
    inter_deg.clear();
    inter_deg.extend((0..n).map(|v| pig.graph().degree(v) - false_rows[v].count()));
    let falive_deg = &mut ws.falive_deg;
    falive_deg.clear();
    falive_deg.extend((0..n).map(|v| false_rows[v].count()));
    // shared_cnt[v]: alive neighbors over shared (Er ∩ Ef) edges. Shared
    // edges are never removable, so node death is the only event that
    // changes this; together with the two degree counters it makes the
    // spill metric O(1) per candidate.
    let shared_cnt = &mut ws.shared_cnt;
    shared_cnt.clear();
    shared_cnt.extend((0..n).map(|v| pig.shared().row(v).count()));

    // Count of alive nodes with degree < k. Degrees only decrease, so each
    // node crosses the threshold at most once; the counter makes the
    // simplify scan free during edge-removal storms (when nothing is
    // simplifiable for long stretches) while the scan itself keeps the
    // reference pick order: minimal (degree, id).
    let mut below_k: usize = (0..n)
        .filter(|&v| inter_deg[v] + falive_deg[v] < k as usize)
        .count();

    let mut stack: Vec<usize> = Vec::with_capacity(n);
    let mut spilled: Vec<usize> = Vec::new();
    let mut removed_edges: Vec<(usize, usize)> = Vec::new();
    let mut rng_state = match config.edge_policy {
        EdgeRemovalPolicy::Pseudorandom { seed } => seed | 1,
        _ => 1,
    };
    let scratch = &mut ws.scratch;
    scratch.reset(n);

    // Least-benefit removal picks the minimum of a *static* key (the
    // priority sums never change), so instead of rescanning every eligible
    // edge after each removal, a lazy heap holds candidate edges and
    // entries are validated when popped. A node's false edges enter the
    // heap when it becomes savable — at the start, or when `remove_node`
    // drops its interference degree below k (degrees only decrease, so
    // that transition happens at most once per node). Stale entries
    // (removed edge, dead endpoint, savability lost) are discarded on pop,
    // which keeps the choice identical to the full scan.
    let lazy = config.edge_policy == EdgeRemovalPolicy::LeastBenefit;
    let heap = &mut ws.heap;
    heap.clear();
    let queued = &mut ws.queued;
    queued.clear();
    queued.resize(if lazy { n } else { 0 }, false);
    let savable = |v: usize, inter_deg: &[usize], falive_deg: &[usize]| {
        inter_deg[v] < k as usize && falive_deg[v] > 0
    };
    if lazy {
        for v in alive.iter() {
            if savable(v, inter_deg, falive_deg) {
                queued[v] = true;
                for u in false_rows[v].iter() {
                    let (a, b) = (v.min(u), v.max(u));
                    heap.push(Reverse(pack_edge(
                        priority[a].saturating_add(priority[b]),
                        a,
                        b,
                    )));
                }
            }
        }
    }

    drop(setup_span);
    let loop_span = parsched_telemetry::span(telemetry, "combined.mainloop");
    let mut remaining = n;
    while remaining > 0 {
        // Simplify: remove nodes of degree < k (smallest degree first,
        // ties by node id). The scan only runs when the counter proves it
        // can succeed.
        let pick = if below_k == 0 {
            None
        } else {
            let mut best: Option<(usize, usize)> = None;
            for v in alive.iter() {
                let d = inter_deg[v] + falive_deg[v];
                if d < k as usize && best.is_none_or(|cur| (d, v) < cur) {
                    best = Some((d, v));
                }
            }
            best.map(|(_, v)| v)
        };
        if let Some(v) = pick {
            remove_node(
                v,
                alive,
                work_rows,
                false_rows,
                pig.shared(),
                inter_deg,
                falive_deg,
                shared_cnt,
                k,
                &mut below_k,
                scratch,
            );
            if lazy {
                queue_new_savable(
                    v, alive, work_rows, false_rows, inter_deg, falive_deg, k, priority, queued,
                    heap, scratch,
                );
            }
            stack.push(v);
            remaining -= 1;
            continue;
        }

        // Blocked. A node is *savable* when its interference degree alone
        // is below k and at least one removable false edge touches it (the
        // paper's second loop); removing such an edge can free it.
        let mut chosen: Option<(usize, usize)> = None;
        match config.edge_policy {
            EdgeRemovalPolicy::LeastBenefit => {
                // Discard stale heap entries until the top one still names
                // a live, savable-endpoint false edge; the minimum valid
                // key is exactly what the full scan would have picked.
                while let Some(&Reverse(entry)) = heap.peek() {
                    let (a, b) = unpack_edge(entry);
                    if alive.contains(a)
                        && alive.contains(b)
                        && false_rows[a].contains(b)
                        && (savable(a, inter_deg, falive_deg) || savable(b, inter_deg, falive_deg))
                    {
                        chosen = Some((a, b));
                        heap.pop();
                        break;
                    }
                    heap.pop();
                }
            }
            EdgeRemovalPolicy::Pseudorandom { .. } => {
                let mut eligible: Vec<(usize, usize)> = Vec::new();
                for_each_eligible(alive, false_rows, inter_deg, falive_deg, k, |a, b| {
                    eligible.push((a, b));
                });
                if !eligible.is_empty() {
                    // xorshift64*
                    rng_state ^= rng_state << 13;
                    rng_state ^= rng_state >> 7;
                    rng_state ^= rng_state << 17;
                    chosen = Some(eligible[(rng_state as usize) % eligible.len()]);
                }
            }
            EdgeRemovalPolicy::DegreeRelief => {
                let mut best: Option<(usize, usize, usize)> = None;
                for_each_eligible(alive, false_rows, inter_deg, falive_deg, k, |a, b| {
                    let da = inter_deg[a] + falive_deg[a];
                    let db = inter_deg[b] + falive_deg[b];
                    let key = (da.min(db), a, b);
                    if best.is_none_or(|cur| key < cur) {
                        best = Some(key);
                    }
                });
                chosen = best.map(|(_, a, b)| (a, b));
            }
        }
        if let Some((a, b)) = chosen {
            work_rows[a].remove(b);
            work_rows[b].remove(a);
            false_rows[a].remove(b);
            false_rows[b].remove(a);
            falive_deg[a] -= 1;
            falive_deg[b] -= 1;
            for x in [a, b] {
                if inter_deg[x] + falive_deg[x] + 1 == k as usize {
                    below_k += 1;
                }
            }
            removed_edges.push((a, b));
            continue;
        }

        // No savable node: spill by the configured metric. The class
        // breakdown of each candidate's surviving neighborhood is carried
        // by the maintained counters: the two degree counters sum to
        // |work ∩ alive|, removable false edges are exactly `falive_deg`,
        // and `shared_cnt` tracks the (never-removable) shared edges — so
        // no row is scanned here. Grouped-by-class multiplication is
        // bit-identical to the per-neighbor sum under the dyadic weights
        // used everywhere (0, 1, 1.5, 2).
        let weight_sum =
            |v: usize, inter_deg: &[usize], falive_deg: &[usize], shared_cnt: &[usize]| -> f64 {
                let total = inter_deg[v] + falive_deg[v];
                match config.spill_metric {
                    SpillMetric::CostOverDegree => total as f64,
                    SpillMetric::HStar {
                        interference_weight,
                        shared_weight,
                        parallel_weight,
                    } => {
                        let shared = shared_cnt[v];
                        let parallel = falive_deg[v];
                        let inter = total - shared - parallel;
                        shared_weight * shared as f64
                            + parallel_weight * parallel as f64
                            + interference_weight * inter as f64
                    }
                }
            };
        // `remaining > 0` guarantees an unremoved node; `else break` states
        // that invariant without a panic path, and `total_cmp` orders NaN
        // metrics deterministically.
        let mut victim: Option<(usize, f64)> = None;
        for v in alive.iter() {
            let h =
                costs[v] / weight_sum(v, inter_deg, falive_deg, shared_cnt).max(f64::MIN_POSITIVE);
            let better = match victim {
                None => true,
                Some((_, hb)) => h.total_cmp(&hb).is_lt(),
            };
            if better {
                victim = Some((v, h));
            }
        }
        let Some((victim, _)) = victim else {
            break;
        };
        remove_node(
            victim,
            alive,
            work_rows,
            false_rows,
            pig.shared(),
            inter_deg,
            falive_deg,
            shared_cnt,
            k,
            &mut below_k,
            scratch,
        );
        if lazy {
            queue_new_savable(
                victim, alive, work_rows, false_rows, inter_deg, falive_deg, k, priority, queued,
                heap, scratch,
            );
        }
        if telemetry.enabled() {
            telemetry.event("combined.spill", &format!("node {victim}"));
        }
        spilled.push(victim);
        remaining -= 1;
        // The paper places spill victims on the spill list, not the select
        // stack: after spilling, the whole procedure repeats on rewritten
        // code, so optimistic coloring of the victim is not attempted.
    }

    drop(loop_span);
    let _select_span = parsched_telemetry::span(telemetry, "combined.select");
    // Select (only meaningful when nothing spilled, matching the paper;
    // still performed so callers can inspect partial colorings).
    let mut colors = vec![u32::MAX; n];
    for &v in stack.iter().rev() {
        let mut used = vec![false; k as usize];
        for u in work_rows[v].iter() {
            if colors[u] != u32::MAX {
                used[colors[u] as usize] = true;
            }
        }
        match (0..k).find(|&c| !used[c as usize]) {
            Some(c) => colors[v] = c,
            // Simplified nodes have degree < k at removal time, so a free
            // color always exists; if that invariant ever broke, spilling
            // the node degrades the result instead of crashing the process.
            None => spilled.push(v),
        }
    }
    spilled.sort_unstable();
    if telemetry.enabled() {
        telemetry.counter("combined.simplified", stack.len() as u64);
        telemetry.counter("combined.removed_false_edges", removed_edges.len() as u64);
        telemetry.counter("combined.spilled", spilled.len() as u64);
    }
    CombinedOutcome {
        colors,
        spilled,
        removed_false_edges: removed_edges,
    }
}

/// Packs a least-benefit candidate edge as `(key, a, b)` in one `u128`:
/// numeric order equals the lexicographic order of the tuple, so the heap
/// compares a single word pair instead of three fields. Node ids fit u32
/// (blocks are bounded far below that).
fn pack_edge(key: u32, a: usize, b: usize) -> u128 {
    debug_assert!(a <= u32::MAX as usize && b <= u32::MAX as usize);
    ((key as u128) << 64) | ((a as u128) << 32) | b as u128
}

fn unpack_edge(x: u128) -> (usize, usize) {
    (((x >> 32) as u32) as usize, (x as u32) as usize)
}

/// After `v`'s removal dropped its neighbors' degree counters, pushes the
/// false edges of any neighbor that just became savable (interference
/// degree below `k` for the first time) into the least-benefit candidate
/// heap. Degrees only decrease, so each node passes this threshold at most
/// once and `queued` guarantees a single push per node.
#[allow(clippy::too_many_arguments)]
fn queue_new_savable(
    v: usize,
    alive: &BitSet,
    work_rows: &[BitSet],
    false_rows: &[BitSet],
    inter_deg: &[usize],
    falive_deg: &[usize],
    k: u32,
    priority: &[u32],
    queued: &mut [bool],
    heap: &mut BinaryHeap<Reverse<u128>>,
    scratch: &mut BitSet,
) {
    scratch.clone_from(&work_rows[v]);
    scratch.intersect_with(alive);
    for u in scratch.iter() {
        if !queued[u] && inter_deg[u] < k as usize && falive_deg[u] > 0 {
            queued[u] = true;
            for w in false_rows[u].iter() {
                let (a, b) = (u.min(w), u.max(w));
                heap.push(Reverse(pack_edge(
                    priority[a].saturating_add(priority[b]),
                    a,
                    b,
                )));
            }
        }
    }
}

/// Marks `v` dead and repairs its alive neighbors' split degree counters,
/// keeping the below-`k` population count exact. Adjacency rows are left
/// intact: the select phase needs the surviving edge set over *all* nodes.
#[allow(clippy::too_many_arguments)]
fn remove_node(
    v: usize,
    alive: &mut BitSet,
    work_rows: &[BitSet],
    false_rows: &[BitSet],
    shared: &parsched_graph::BitMatrix,
    inter_deg: &mut [usize],
    falive_deg: &mut [usize],
    shared_cnt: &mut [usize],
    k: u32,
    below_k: &mut usize,
    scratch: &mut BitSet,
) {
    if inter_deg[v] + falive_deg[v] < k as usize {
        *below_k -= 1;
    }
    alive.remove(v);
    scratch.clone_from(&work_rows[v]);
    scratch.intersect_with(alive);
    for u in scratch.iter() {
        if false_rows[v].contains(u) {
            falive_deg[u] -= 1;
        } else {
            inter_deg[u] -= 1;
            if shared.row(v).contains(u) {
                shared_cnt[u] -= 1;
            }
        }
        if inter_deg[u] + falive_deg[u] + 1 == k as usize {
            *below_k += 1;
        }
    }
}

/// Calls `f(a, b)` (canonical `a < b`) for every removable false edge whose
/// savable endpoint makes it eligible, in ascending savable-node order —
/// the same enumeration order as the reference formulation (an edge with
/// two savable endpoints is visited twice, as before).
fn for_each_eligible(
    alive: &BitSet,
    false_rows: &[BitSet],
    inter_deg: &[usize],
    falive_deg: &[usize],
    k: u32,
    mut f: impl FnMut(usize, usize),
) {
    for v in alive.iter() {
        if inter_deg[v] >= k as usize || falive_deg[v] == 0 {
            continue;
        }
        for u in false_rows[v].iter() {
            if alive.contains(u) {
                if v < u {
                    f(v, u);
                } else {
                    f(u, v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::BlockAllocProblem;
    use parsched_ir::liveness::Liveness;
    use parsched_ir::{parse_function, BlockId};
    use parsched_machine::presets;
    use parsched_sched::DepGraph;

    fn pig_of(
        src: &str,
        machine: &parsched_machine::MachineDesc,
    ) -> (BlockAllocProblem, Pig, Vec<f64>, Vec<u32>) {
        let f = parse_function(src).unwrap();
        let lv = Liveness::compute(&f, &[]);
        let p = BlockAllocProblem::build(&f, BlockId(0), &lv).unwrap();
        let d = DepGraph::build(&f.blocks()[0], &parsched_telemetry::NullTelemetry);
        let pig = Pig::build(&p, &d, machine, &parsched_telemetry::NullTelemetry);
        let costs: Vec<f64> = (0..p.len()).map(|n| p.spill_cost(n)).collect();
        let heights = d.heights(machine).unwrap();
        let priority: Vec<u32> = (0..p.len())
            .map(|n| p.def_site(n).map_or(0, |i| heights[i]))
            .collect();
        (p, pig, costs, priority)
    }

    const EXAMPLE1: &str = r#"
        func @ex1(s9) {
        entry:
            s1 = load [@z + 0]
            s2 = fadd s9, 0
            s3 = load [s2 + 0]
            s4 = add s1, s1
            s5 = mul s3, s1
            ret s5
        }
    "#;

    #[test]
    fn enough_registers_no_spill_no_removal() {
        let m = presets::paper_machine(8);
        let (_p, pig, costs, prio) = pig_of(EXAMPLE1, &m);
        let out = combined_color(
            &pig,
            8,
            &costs,
            &prio,
            &PinterConfig::default(),
            &parsched_telemetry::NullTelemetry,
        );
        assert!(out.spilled.is_empty());
        assert!(out.removed_false_edges.is_empty());
        assert!(pig.graph().is_proper_coloring(&out.colors));
        assert!(out.colors_used() <= 4);
    }

    #[test]
    fn example1_three_registers_suffice() {
        let m = presets::paper_machine(3);
        let (_p, pig, costs, prio) = pig_of(EXAMPLE1, &m);
        let out = combined_color(
            &pig,
            3,
            &costs,
            &prio,
            &PinterConfig::default(),
            &parsched_telemetry::NullTelemetry,
        );
        assert!(out.spilled.is_empty(), "paper: 3 registers, no spill");
        assert!(pig.graph().is_proper_coloring(&out.colors));
    }

    #[test]
    fn pressure_removes_false_edges_before_spilling() {
        // With 2 registers, Example 1 cannot keep all parallelism (the PIG
        // has a triangle), but interference alone is 2-colorable only if…
        // actually Gr has triangle s1-s3-s4 too, so 2 registers force a
        // spill; with 3 registers but a denser false set, edges go first.
        // Use a block whose Gr is 2-colorable but PIG needs 3:
        let m = presets::paper_machine(2);
        let src = r#"
            func @p(s8, s9) {
            entry:
                s1 = add s8, 1
                s2 = fadd s9, 1
                s3 = add s1, 1
                s4 = fadd s2, 1
                s5 = add s3, s3
                s6 = fadd s4, s4
                ret s6
            }
        "#;
        let (_p, pig, costs, prio) = pig_of(src, &m);
        let out = combined_color(
            &pig,
            2,
            &costs,
            &prio,
            &PinterConfig::default(),
            &parsched_telemetry::NullTelemetry,
        );
        // Int and float chains interleave: Gr is small, false edges connect
        // the chains. Two registers must cost parallelism, not spills.
        assert!(
            !out.removed_false_edges.is_empty(),
            "expected false-edge removal under pressure"
        );
        assert!(out.spilled.is_empty(), "no spill needed: {out:?}");
    }

    #[test]
    fn hopeless_pressure_spills() {
        // Three mutually-interfering live-in values + 1 register: spill.
        let m = presets::paper_machine(1);
        let src = r#"
            func @s(s0, s1, s2) {
            entry:
                s3 = add s0, s1
                s4 = add s3, s2
                ret s4
            }
        "#;
        let (_p, pig, costs, prio) = pig_of(src, &m);
        let out = combined_color(
            &pig,
            1,
            &costs,
            &prio,
            &PinterConfig::default(),
            &parsched_telemetry::NullTelemetry,
        );
        assert!(!out.spilled.is_empty());
    }

    #[test]
    fn policies_are_deterministic() {
        let m = presets::paper_machine(2);
        let (_p, pig, costs, prio) = pig_of(EXAMPLE1, &m);
        for policy in [
            EdgeRemovalPolicy::LeastBenefit,
            EdgeRemovalPolicy::Pseudorandom { seed: 42 },
            EdgeRemovalPolicy::DegreeRelief,
        ] {
            let cfg = PinterConfig {
                edge_policy: policy,
                ..PinterConfig::default()
            };
            let a = combined_color(
                &pig,
                2,
                &costs,
                &prio,
                &cfg,
                &parsched_telemetry::NullTelemetry,
            );
            let b = combined_color(
                &pig,
                2,
                &costs,
                &prio,
                &cfg,
                &parsched_telemetry::NullTelemetry,
            );
            assert_eq!(a, b, "{policy:?} must be deterministic");
        }
    }

    #[test]
    fn hstar_with_zero_parallel_weight_matches_h_shape() {
        // Sanity: the metric degenerates without panicking and picks a
        // victim with minimal cost/degree on a clique.
        let m = presets::paper_machine(1);
        let src = r#"
            func @s(s0, s1, s2) {
            entry:
                s3 = add s0, s1
                s4 = add s3, s2
                ret s4
            }
        "#;
        let (_p, pig, costs, prio) = pig_of(src, &m);
        let cfg = PinterConfig {
            spill_metric: SpillMetric::HStar {
                interference_weight: 1.0,
                shared_weight: 1.0,
                parallel_weight: 0.0,
            },
            ..PinterConfig::default()
        };
        let out = combined_color(
            &pig,
            1,
            &costs,
            &prio,
            &cfg,
            &parsched_telemetry::NullTelemetry,
        );
        assert!(!out.spilled.is_empty());
    }
}
