//! Spill-code insertion.
//!
//! A spilled value lives in a dedicated memory slot (`[@__spill + 8k]`).
//! Its definition is followed by a store; every use reads the slot into a
//! fresh symbolic register just before the using instruction. Live-in
//! values (parameters) are stored at block entry. The fresh reload
//! registers have point live ranges, so the rewritten block is strictly
//! easier to color.

use parsched_ir::{Block, BlockId, Function, Inst, InstKind, MemAddr, Reg};
use parsched_sched::BlockRemap;
use std::collections::HashMap;

/// The reserved global region that holds spilled values.
pub const SPILL_REGION: &str = "__spill";

/// Allocates spill slots and rewrites one block of `func`, spilling the
/// given symbolic registers. Returns the rewritten function, the number of
/// memory operations inserted, and a [`BlockRemap`] from old to new body
/// positions (every original instruction survives the rewrite, so the map
/// is total) that lets a [`parsched_sched::SchedSession`] update its
/// closure incrementally instead of rebuilding from scratch.
///
/// `next_slot` is the next free slot index; it is advanced so repeated
/// spill rounds never reuse a slot.
///
/// Spill activity is reported to `telemetry`: `spill.values` (registers
/// spilled), `spill.inserted_mem_ops` (loads/stores added), and one
/// `spill.value` event per register.
///
/// # Panics
/// Panics if a spilled register is not symbolic (physical registers are
/// never spill candidates in this workspace).
pub fn insert_spill_code(
    func: &Function,
    block_id: BlockId,
    spills: &[Reg],
    next_slot: &mut i64,
    telemetry: &dyn parsched_telemetry::Telemetry,
) -> (Function, usize, BlockRemap) {
    let _span = parsched_telemetry::span(telemetry, "spill.rewrite");
    if telemetry.enabled() {
        telemetry.counter("spill.values", spills.len() as u64);
        for &r in spills {
            telemetry.event("spill.value", &r.to_string());
        }
    }
    for &r in spills {
        assert!(r.is_sym(), "only symbolic registers are spilled, got {r}");
    }
    let slot_of = assign_slots(func, block_id, spills, next_slot);
    let mut fresh = func.num_sym_regs();
    let mut inserted = 0usize;

    let old_block = func.block(block_id);
    let old_body_len = old_block.body().len();
    let mut old_to_new: Vec<usize> = Vec::with_capacity(old_body_len);
    let mut new_block = Block::new(old_block.label());

    // Live-in spills (parameters or upstream values): store on entry.
    let defined_in_block: Vec<Reg> = old_block.insts().iter().flat_map(Inst::defs).collect();
    for &r in spills {
        if !defined_in_block.contains(&r) {
            new_block.push(InstKind::Store {
                src: r,
                addr: spill_addr(slot_of[&r]),
                float: false,
            });
            inserted += 1;
        }
    }

    for (old_pos, inst) in old_block.insts().iter().enumerate() {
        // Reload each spilled use into a fresh register.
        let mut replacement: HashMap<Reg, Reg> = HashMap::new();
        for u in inst.uses() {
            if let Some(&slot) = slot_of.get(&u) {
                replacement.entry(u).or_insert_with(|| {
                    let tmp = Reg::sym(fresh);
                    fresh += 1;
                    new_block.push(InstKind::Load {
                        dst: tmp,
                        addr: spill_addr(slot),
                        float: false,
                    });
                    inserted += 1;
                    tmp
                });
            }
        }
        let mut rewritten = inst.clone();
        if !replacement.is_empty() {
            rewritten.map_regs(|r| {
                // Only *uses* are replaced; a def of a spilled reg keeps its
                // name (the store below captures it). Defs and uses of the
                // same spilled reg cannot collide because the block-level
                // problem enforces single definitions.
                *replacement.get(&r).unwrap_or(&r)
            });
        }
        let defs = rewritten.defs();
        if old_pos < old_body_len {
            old_to_new.push(new_block.insts().len());
        }
        new_block.push(rewritten);
        // Store each spilled definition right after it.
        for d in defs {
            if let Some(&slot) = slot_of.get(&d) {
                new_block.push(InstKind::Store {
                    src: d,
                    addr: spill_addr(slot),
                    float: false,
                });
                inserted += 1;
            }
        }
    }

    let remap = BlockRemap::new(old_to_new, new_block.body().len());
    let mut blocks = func.blocks().to_vec();
    blocks[block_id.0] = new_block;
    if telemetry.enabled() {
        telemetry.counter("spill.inserted_mem_ops", inserted as u64);
    }
    (
        Function::new(func.name(), func.params().to_vec(), blocks),
        inserted,
        remap,
    )
}

fn spill_addr(slot: i64) -> MemAddr {
    MemAddr::global(SPILL_REGION, slot * 8)
}

/// Assigns spill slots with interval coloring: two spilled values whose
/// memory lifetimes ([definition, last use] in block positions) do not
/// overlap share a slot. `next_slot` advances by the number of distinct
/// slots used, so rounds never collide.
fn assign_slots(
    func: &Function,
    block_id: BlockId,
    spills: &[Reg],
    next_slot: &mut i64,
) -> HashMap<Reg, i64> {
    let insts = func.block(block_id).insts();
    // Memory lifetime of each spilled value in instruction positions.
    // Live-in values (no def in this block) are stored at block *entry*,
    // before position 0 — their lifetime starts at -1, not 0, so they can
    // never share a slot with a value whose reload happens at or after
    // entry (two live-in spills would otherwise clobber each other).
    let mut ranges: Vec<(Reg, i64, i64)> = spills
        .iter()
        .map(|&r| {
            let def = insts
                .iter()
                .position(|i| i.defs().contains(&r))
                .map_or(-1, |p| p as i64);
            let last_use = insts
                .iter()
                .rposition(|i| i.uses().contains(&r))
                .map_or(insts.len() as i64, |p| p as i64);
            (r, def, last_use.max(def))
        })
        .collect();
    ranges.sort_by_key(|&(r, start, _)| (start, r));

    // Greedy interval coloring: reuse the slot with the earliest-expiring
    // lifetime that ends before this one starts.
    let mut slot_of: HashMap<Reg, i64> = HashMap::new();
    let mut slot_free_at: Vec<(i64, i64)> = Vec::new(); // (slot, busy-until)
    for (r, start, end) in ranges {
        // `<=` is safe at equality: the old value's reload is emitted
        // *before* the boundary instruction and the new value's store
        // *after* it, and the memory anti-dependence keeps that order
        // under any later rescheduling.
        let reusable = slot_free_at
            .iter_mut()
            .filter(|(_, busy_until)| *busy_until <= start)
            .min_by_key(|(slot, _)| *slot);
        match reusable {
            Some(entry) => {
                entry.1 = end;
                slot_of.insert(r, entry.0);
            }
            None => {
                let slot = *next_slot;
                *next_slot += 1;
                slot_free_at.push((slot, end));
                slot_of.insert(r, slot);
            }
        }
    }
    slot_of
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched_ir::interp::{Interpreter, Memory};
    use parsched_ir::parse_function;

    #[test]
    fn spilled_def_and_uses_rewritten() {
        let f = parse_function(
            r#"
            func @sp(s0) {
            entry:
                s1 = add s0, 1
                s2 = add s1, 2
                s3 = add s1, s2
                ret s3
            }
            "#,
        )
        .unwrap();
        let mut slot = 0;
        let (g, inserted, remap) = insert_spill_code(
            &f,
            BlockId(0),
            &[Reg::sym(1)],
            &mut slot,
            &parsched_telemetry::NullTelemetry,
        );
        assert_eq!(slot, 1);
        // One store after the def + two reloads.
        assert_eq!(inserted, 3);
        assert_eq!(g.inst_count(), f.inst_count() + 3);
        // The remap tracks every surviving body instruction: old body
        // position p holds the same opcode/def as new position remap(p).
        let old_body = f.block(BlockId(0)).body();
        let new_body = g.block(BlockId(0)).body();
        assert_eq!(remap.old_len(), old_body.len());
        assert_eq!(remap.new_len(), new_body.len());
        for (p, inst) in old_body.iter().enumerate() {
            assert_eq!(inst.defs(), new_body[remap.new_pos(p)].defs());
        }
        // Semantics preserved.
        let i = Interpreter::new();
        let before = i.run(&f, &[10], Memory::new()).unwrap();
        let after = i.run(&g, &[10], Memory::new()).unwrap();
        assert_eq!(before.return_value, after.return_value);
    }

    #[test]
    fn live_in_spill_stores_at_entry() {
        let f = parse_function(
            r#"
            func @li(s0) {
            entry:
                s1 = add s0, 1
                s2 = add s0, s1
                ret s2
            }
            "#,
        )
        .unwrap();
        let mut slot = 5;
        let (g, inserted, _) = insert_spill_code(
            &f,
            BlockId(0),
            &[Reg::sym(0)],
            &mut slot,
            &parsched_telemetry::NullTelemetry,
        );
        assert_eq!(slot, 6);
        assert_eq!(inserted, 3, "entry store + two reloads");
        // First instruction is the entry store to slot 5 (offset 40).
        let first = &g.block(BlockId(0)).insts()[0];
        assert!(matches!(first.kind(), InstKind::Store { .. }));
        let i = Interpreter::new();
        assert_eq!(
            i.run(&g, &[7], Memory::new()).unwrap().return_value,
            i.run(&f, &[7], Memory::new()).unwrap().return_value
        );
    }

    #[test]
    fn multiple_spills_get_distinct_slots() {
        let f = parse_function(
            r#"
            func @m(s0) {
            entry:
                s1 = add s0, 1
                s2 = add s0, 2
                s3 = add s1, s2
                ret s3
            }
            "#,
        )
        .unwrap();
        let mut slot = 0;
        let (g, _, _) = insert_spill_code(
            &f,
            BlockId(0),
            &[Reg::sym(1), Reg::sym(2)],
            &mut slot,
            &parsched_telemetry::NullTelemetry,
        );
        assert_eq!(slot, 2);
        let text = parsched_ir::print_function(&g);
        assert!(text.contains("[@__spill + 0]"));
        assert!(text.contains("[@__spill + 8]"));
        let i = Interpreter::new();
        assert_eq!(
            i.run(&g, &[3], Memory::new()).unwrap().return_value,
            Some(9)
        );
    }

    #[test]
    fn disjoint_spills_share_a_slot() {
        // s1 dies (last use) before s2 is defined: one slot serves both.
        let f = parse_function(
            r#"
            func @share(s0) {
            entry:
                s1 = add s0, 1
                s2 = add s1, 1
                s3 = add s2, 1
                ret s3
            }
            "#,
        )
        .unwrap();
        let mut slot = 0;
        let (g, _, _) = insert_spill_code(
            &f,
            BlockId(0),
            &[Reg::sym(1), Reg::sym(2)],
            &mut slot,
            &parsched_telemetry::NullTelemetry,
        );
        assert_eq!(slot, 1, "non-overlapping lifetimes share one slot");
        let i = Interpreter::new();
        assert_eq!(
            i.run(&g, &[5], Memory::new()).unwrap().return_value,
            Some(8)
        );
    }

    #[test]
    fn overlapping_spills_get_distinct_slots() {
        let f = parse_function(
            r#"
            func @overlap(s0) {
            entry:
                s1 = add s0, 1
                s2 = add s0, 2
                s3 = add s1, s2
                ret s3
            }
            "#,
        )
        .unwrap();
        let mut slot = 0;
        let (g, _, _) = insert_spill_code(
            &f,
            BlockId(0),
            &[Reg::sym(1), Reg::sym(2)],
            &mut slot,
            &parsched_telemetry::NullTelemetry,
        );
        assert_eq!(slot, 2, "overlapping lifetimes need two slots");
        let i = Interpreter::new();
        assert_eq!(
            i.run(&g, &[5], Memory::new()).unwrap().return_value,
            Some(13)
        );
    }

    #[test]
    fn live_in_spills_never_share_a_slot() {
        // Both params are live-in, so both are stored at block entry;
        // sharing a slot would let the second store clobber the first
        // value before its reload. Found by the translation-validation
        // fuzzer (seed 0, case 44).
        let Ok(f) = parse_function(
            r#"
            func @li2(s0, s1) {
            entry:
                s2 = add s0, 1
                s3 = mul s2, s1
                ret s3
            }
            "#,
        ) else {
            unreachable!("fixture parses")
        };
        let mut slot = 0;
        let (g, _, _) = insert_spill_code(
            &f,
            BlockId(0),
            &[Reg::sym(0), Reg::sym(1)],
            &mut slot,
            &parsched_telemetry::NullTelemetry,
        );
        assert_eq!(slot, 2, "live-in spills need distinct slots");
        let i = Interpreter::new();
        let run = |h: &Function| {
            i.run(h, &[5, 3], Memory::new())
                .ok()
                .and_then(|o| o.return_value)
        };
        assert!(run(&f).is_some());
        assert_eq!(run(&g), run(&f));
    }

    #[test]
    fn spill_reduces_pressure() {
        use parsched_ir::liveness::Liveness;
        let f = parse_function(
            r#"
            func @p() {
            entry:
                s0 = li 1
                s1 = li 2
                s2 = li 3
                s3 = add s1, s2
                s4 = add s3, s0
                ret s4
            }
            "#,
        )
        .unwrap();
        let lv = Liveness::compute(&f, &[]);
        let before = lv.block_pressure(&f, BlockId(0));
        let mut slot = 0;
        let (g, _, _) = insert_spill_code(
            &f,
            BlockId(0),
            &[Reg::sym(0)],
            &mut slot,
            &parsched_telemetry::NullTelemetry,
        );
        let lv2 = Liveness::compute(&g, &[]);
        let after = lv2.block_pressure(&g, BlockId(0));
        assert!(after < before, "pressure {before} -> {after}");
    }

    #[test]
    fn terminator_use_is_reloaded() {
        let f = parse_function(
            r#"
            func @t() {
            entry:
                s0 = li 42
                ret s0
            }
            "#,
        )
        .unwrap();
        let mut slot = 0;
        let (g, _, _) = insert_spill_code(
            &f,
            BlockId(0),
            &[Reg::sym(0)],
            &mut slot,
            &parsched_telemetry::NullTelemetry,
        );
        let i = Interpreter::new();
        assert_eq!(
            i.run(&g, &[], Memory::new()).unwrap().return_value,
            Some(42)
        );
        // Ret now returns a reload temp, not s0.
        let last = g.block(BlockId(0)).insts().last().unwrap();
        assert!(matches!(last.kind(), InstKind::Ret { value: Some(r) } if *r != Reg::sym(0)));
    }
}
