//! `psc` — the parsched command-line driver.
//!
//! Compile a textual-IR function with a chosen strategy and machine, print
//! the result, the cycle-by-cycle schedule, or the statistics, and
//! optionally execute it in the reference interpreter.
//!
//! ```text
//! psc FILE [--strategy combined|alloc-first|sched-first]
//!          [--machine single|paper|mips|rs6000|wide4]
//!          [--machine-spec FILE]
//!          [--regs N]
//!          [--emit text|schedule|stats|json|dot]
//!          [--run ARG...]
//! ```

use parsched::ir::interp::{Interpreter, Memory};
use parsched::ir::{parse_function, print_function, print_inst, BlockId};
use parsched::machine::{parse_machine_spec, presets, MachineDesc};
use parsched::sched::{list_schedule, DepGraph};
use parsched::{Pipeline, Strategy};
use std::process::ExitCode;

const USAGE: &str = "\
usage: psc FILE [options]
options:
  --strategy combined|alloc-first|sched-first   (default combined)
  --machine single|paper|mips|rs6000|wide4      (default paper)
  --machine-spec FILE    load a textual machine description instead
  --regs N               override the register-file size
  --emit text|schedule|stats|json|dot           (default text)
                         dot renders block 0's parallelizable interference
                         graph (false-dependence edges dashed)
  --run ARG...           execute before and after compiling and compare
";

struct Options {
    file: String,
    strategy: Strategy,
    machine: MachineDesc,
    regs: Option<u32>,
    emit: Emit,
    run: Option<Vec<i64>>,
}

#[derive(PartialEq)]
enum Emit {
    Text,
    Schedule,
    Stats,
    Json,
    Dot,
}

fn main() -> ExitCode {
    // --help prints usage to stdout and succeeds.
    if std::env::args().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("psc: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut file: Option<String> = None;
    let mut strategy = Strategy::combined();
    let mut machine: Option<MachineDesc> = None;
    let mut regs: Option<u32> = None;
    let mut emit = Emit::Text;
    let mut run: Option<Vec<i64>> = None;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => return Err(USAGE.to_string()),
            "--strategy" => {
                let v = args.next().ok_or("--strategy needs a value")?;
                strategy = match v.as_str() {
                    "combined" => Strategy::combined(),
                    "alloc-first" => Strategy::AllocThenSched,
                    "sched-first" => Strategy::SchedThenAlloc,
                    other => return Err(format!("unknown strategy `{other}`")),
                };
            }
            "--machine" => {
                let v = args.next().ok_or("--machine needs a value")?;
                machine = Some(match v.as_str() {
                    "single" => presets::single_issue(32),
                    "paper" => presets::paper_machine(32),
                    "mips" => presets::mips_r3000(32),
                    "rs6000" => presets::rs6000(32),
                    "wide4" => presets::wide(4, 32),
                    other => return Err(format!("unknown machine `{other}`")),
                });
            }
            "--machine-spec" => {
                let path = args.next().ok_or("--machine-spec needs a path")?;
                let src =
                    std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
                machine = Some(parse_machine_spec(&src).map_err(|e| e.to_string())?);
            }
            "--regs" => {
                let v = args.next().ok_or("--regs needs a value")?;
                regs = Some(v.parse().map_err(|_| format!("bad register count `{v}`"))?);
            }
            "--emit" => {
                let v = args.next().ok_or("--emit needs a value")?;
                emit = match v.as_str() {
                    "text" => Emit::Text,
                    "schedule" => Emit::Schedule,
                    "stats" => Emit::Stats,
                    "json" => Emit::Json,
                    "dot" => Emit::Dot,
                    other => return Err(format!("unknown emit mode `{other}`")),
                };
            }
            "--run" => {
                let rest: Result<Vec<i64>, _> = args.by_ref().map(|a| a.parse()).collect();
                run = Some(rest.map_err(|_| "--run arguments must be integers")?);
            }
            other if file.is_none() && !other.starts_with('-') => {
                file = Some(other.to_string());
            }
            other => return Err(format!("unexpected argument `{other}`\n{USAGE}")),
        }
    }
    let file = file.ok_or(USAGE)?;
    Ok(Options {
        file,
        strategy,
        machine: machine.unwrap_or_else(|| presets::paper_machine(32)),
        regs,
        emit,
        run,
    })
}

fn real_main() -> Result<(), String> {
    let opts = parse_args()?;
    let src =
        std::fs::read_to_string(&opts.file).map_err(|e| format!("reading {}: {e}", opts.file))?;
    let func = parse_function(&src).map_err(|e| e.to_string())?;
    let machine = match opts.regs {
        Some(r) => opts.machine.with_num_regs(r),
        None => opts.machine,
    };
    let pipeline = Pipeline::new(machine.clone());
    let result = pipeline
        .compile(&func, &opts.strategy)
        .map_err(|e| e.to_string())?;

    match opts.emit {
        Emit::Dot => {
            use parsched::graph::dot::{ungraph_to_dot, DotOptions};
            use parsched::ir::liveness::Liveness;
            use parsched::regalloc::{BlockAllocProblem, Pig};
            let lv = Liveness::compute(&func, &[]);
            let problem =
                BlockAllocProblem::build(&func, BlockId(0), &lv).map_err(|e| e.to_string())?;
            let deps = DepGraph::build(func.block(BlockId(0)));
            let pig = Pig::build(&problem, &deps, &machine);
            let mut dot_opts = DotOptions::titled(format!(
                "PIG of @{} block 0 on {} (dashed = false-dependence edges)",
                func.name(),
                machine.name()
            ));
            dot_opts.node_labels = problem.nodes().iter().map(|r| r.to_string()).collect();
            dot_opts.edge_styles = pig
                .false_only()
                .edges()
                .map(|(u, v)| (u, v, "dashed".to_string()))
                .collect();
            print!("{}", ungraph_to_dot(pig.graph(), &dot_opts));
        }
        Emit::Text => print!("{}", print_function(&result.function)),
        Emit::Schedule => {
            for b in 0..result.function.block_count() {
                let block = result.function.block(BlockId(b));
                println!("{}:", block.label());
                let deps = DepGraph::build(block);
                let s = list_schedule(block, &deps, &machine);
                for (cycle, group) in s.groups() {
                    let insts: Vec<String> = group
                        .iter()
                        .map(|&i| print_inst(&block.body()[i], &result.function))
                        .collect();
                    println!("  cycle {cycle:>3}: {}", insts.join("  ||  "));
                }
            }
        }
        Emit::Json => {
            let s = &result.stats;
            println!(
                "{{\n  \"machine\": \"{}\",\n  \"strategy\": \"{}\",\n  \"registers_used\": {},\n  \"cycles\": {},\n  \"spilled_values\": {},\n  \"inserted_mem_ops\": {},\n  \"introduced_false_deps\": {},\n  \"removed_false_edges\": {},\n  \"inst_count\": {}\n}}",
                machine.name(),
                opts.strategy.label(),
                s.registers_used,
                s.cycles,
                s.spilled_values,
                s.inserted_mem_ops,
                s.introduced_false_deps,
                s.removed_false_edges,
                s.inst_count
            );
        }
        Emit::Stats => {
            let s = &result.stats;
            println!("machine:              {machine}");
            println!("strategy:             {}", opts.strategy.label());
            println!("registers used:       {}", s.registers_used);
            println!("cycles:               {}", s.cycles);
            println!("spilled values:       {}", s.spilled_values);
            println!("spill mem ops:        {}", s.inserted_mem_ops);
            println!("false deps introduced: {}", s.introduced_false_deps);
            println!("false edges given up: {}", s.removed_false_edges);
            println!("instructions:         {}", s.inst_count);
        }
    }

    if let Some(args) = opts.run {
        let interp = Interpreter::new();
        let before = interp
            .run(&func, &args, Memory::new())
            .map_err(|e| format!("original failed: {e}"))?;
        let after = interp
            .run(&result.function, &args, Memory::new())
            .map_err(|e| format!("compiled failed: {e}"))?;
        println!("original returns: {:?}", before.return_value);
        println!("compiled returns: {:?}", after.return_value);
        if before.return_value != after.return_value {
            return Err("MISCOMPILE: return values differ".to_string());
        }
    }
    Ok(())
}
