//! Work-stealing parallel batch compilation.
//!
//! Pinter's per-block construction (Gs → Et → Gf → PIG) is independent
//! across functions, so a module compiles embarrassingly parallel: the
//! [`BatchDriver`] shards a module's functions across `N` worker threads,
//! runs each function through the resilient [`Driver`] ladder, and joins
//! the results **in input order**, so the output is byte-identical no
//! matter how many workers ran or in what order they finished.
//!
//! The scheduler is a zero-dependency work-stealing design over
//! `std::thread` + channels (the workspace builds offline, so no rayon):
//!
//! * Function indices are striped round-robin into one deque per worker,
//!   so all workers start with a balanced share of the module.
//! * A worker pops its own deque from the **front**; when empty it steals
//!   from the **back** of the most loaded other deque. Front/back
//!   separation keeps stolen work coarse and owned work cache-warm, and
//!   one huge function cannot strand the rest of the module behind it.
//! * Each worker owns a private [`Recorder`], merged into
//!   [`BatchOutput::telemetry`] at join — workers never contend on a
//!   telemetry mutex mid-compilation.
//!
//! Fault isolation composes with the driver's: a function whose every
//! ladder rung fails (or that panics outside the rungs) yields an `Err`
//! in its own slot of [`BatchOutput::results`], never poisoning its
//! neighbours or the process.
//!
//! ```
//! use parsched::{paper, BatchDriver, Driver, Pipeline};
//! use parsched_telemetry::NullTelemetry;
//!
//! let module = vec![paper::example1(), paper::example2()];
//! let batch = BatchDriver::new(Driver::new(Pipeline::new(paper::machine(8)))).with_jobs(2);
//! let out = batch.compile_module(&module, &NullTelemetry);
//! assert_eq!(out.results.len(), 2);
//! assert!(out.results.iter().all(|r| r.is_ok()));
//! ```

use crate::driver::{panic_message, Driver};
use crate::error::ParschedError;
use crate::pipeline::CompileResult;
use parsched_ir::Function;
use parsched_regalloc::AllocSession;
use parsched_telemetry::{Fanout, NullTelemetry, Recorder, Telemetry};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Parallel front end over [`Driver`]: compiles a module's functions
/// across worker threads with work stealing and deterministic output
/// ordering. See the [module docs](crate::batch) for the design.
#[derive(Debug, Clone)]
pub struct BatchDriver {
    driver: Driver,
    jobs: usize,
    record: bool,
}

/// Everything one batch compilation produced.
#[derive(Debug)]
pub struct BatchOutput {
    /// Per-function outcomes, **in input order** regardless of which
    /// worker compiled what and when it finished.
    pub results: Vec<Result<CompileResult, ParschedError>>,
    /// Per-function compile wall time in nanoseconds, in input order.
    pub per_func_ns: Vec<u128>,
    /// Wall-clock time of the whole batch, shard to join.
    pub wall: Duration,
    /// Worker threads actually used (after resolving `jobs = 0` and
    /// clamping to the module size).
    pub jobs: usize,
    /// Per-worker telemetry merged at join. Empty unless
    /// [`BatchDriver::with_recording`] enabled recording. Cross-worker
    /// span *ordering* is nondeterministic; counters, gauges, and
    /// per-phase duration totals are exact.
    pub telemetry: Recorder,
}

impl BatchOutput {
    /// Number of functions that compiled successfully.
    pub fn ok_count(&self) -> usize {
        self.results.iter().filter(|r| r.is_ok()).count()
    }

    /// Number of functions whose every ladder rung failed.
    pub fn err_count(&self) -> usize {
        self.results.len() - self.ok_count()
    }

    /// Total instructions across all successfully compiled functions
    /// (spill code included) — the numerator of a throughput figure.
    pub fn total_insts(&self) -> usize {
        self.results
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .map(|r| r.stats.inst_count)
            .sum()
    }

    /// Total spilled values (or webs) across all successful functions.
    pub fn total_spills(&self) -> usize {
        self.results
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .map(|r| r.stats.spilled_values)
            .sum()
    }

    /// Instructions compiled per second of batch wall time, 0.0 for an
    /// empty or instantaneous batch.
    ///
    /// Always finite: a zero/denormal-duration run with a nonzero
    /// instruction count would otherwise put `inf` (and an empty run
    /// `NaN`) into `--bench-json` reports, which the JSON writer cannot
    /// represent and downstream ratio gates choke on.
    pub fn insts_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        let rate = self.total_insts() as f64 / secs;
        if rate.is_finite() {
            rate
        } else {
            0.0
        }
    }
}

impl BatchDriver {
    /// A batch driver running `driver` on every function, with automatic
    /// worker count ([`available_parallelism`]) and recording off.
    ///
    /// [`available_parallelism`]: std::thread::available_parallelism
    pub fn new(driver: Driver) -> BatchDriver {
        BatchDriver {
            driver,
            jobs: 0,
            record: false,
        }
    }

    /// Sets the worker count. `0` means one worker per available core.
    /// The effective count is additionally clamped to the module size.
    pub fn with_jobs(mut self, jobs: usize) -> BatchDriver {
        self.jobs = jobs;
        self
    }

    /// Enables per-worker [`Recorder`] telemetry, merged into
    /// [`BatchOutput::telemetry`] at join.
    pub fn with_recording(mut self, record: bool) -> BatchDriver {
        self.record = record;
        self
    }

    /// The underlying resilient driver.
    pub fn driver(&self) -> &Driver {
        &self.driver
    }

    /// The configured worker count (`0` = automatic).
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The worker count a module of `n_funcs` functions would actually
    /// use: the configured count (or core count when automatic), clamped
    /// to `n_funcs`, and at least 1.
    pub fn resolved_jobs(&self, n_funcs: usize) -> usize {
        let configured = if self.jobs == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            self.jobs
        };
        configured.min(n_funcs).max(1)
    }

    /// Compiles every function of `funcs` across the worker pool.
    ///
    /// `sink` is a **shared** sink every worker also reports to (it must
    /// be `Sync`; the built-in sinks are — pass [`NullTelemetry`] to opt
    /// out). Per-worker recorders still merge into
    /// [`BatchOutput::telemetry`] when recording is on; the shared sink
    /// sees all workers' signals interleaved live. A sink that panics
    /// fails at most the rung it panicked in — the driver's containment
    /// applies to batch compilation too.
    ///
    /// Each worker owns one [`AllocSession`] reused across every function
    /// it compiles, so dependence-graph and closure allocations stay warm
    /// for the whole stripe.
    pub fn compile_module(&self, funcs: &[Function], sink: &(dyn Telemetry + Sync)) -> BatchOutput {
        let start = Instant::now();
        let n = funcs.len();
        let jobs = self.resolved_jobs(n);
        let master = Recorder::new();
        let mut results: Vec<Option<Result<CompileResult, ParschedError>>> = Vec::new();
        results.resize_with(n, || None);
        let mut per_func_ns: Vec<u128> = vec![0; n];

        if jobs <= 1 {
            // Inline fast path: same per-function code as the workers, no
            // thread spawn. `--jobs 1` output is identical by construction.
            let worker = Recorder::new();
            let mut session = AllocSession::new();
            for (i, func) in funcs.iter().enumerate() {
                let (res, ns) = self.compile_one(&mut session, func, &worker, sink);
                results[i] = Some(res);
                per_func_ns[i] = ns;
            }
            if self.record {
                master.merge_from(&worker);
            }
        } else {
            // Round-robin striping: worker w starts with indices
            // w, w+jobs, w+2*jobs, ... so initial shares are balanced.
            let queues: Vec<Mutex<VecDeque<usize>>> = (0..jobs)
                .map(|w| Mutex::new((w..n).step_by(jobs).collect()))
                .collect();
            let (tx, rx) = mpsc::channel::<(usize, Result<CompileResult, ParschedError>, u128)>();
            std::thread::scope(|scope| {
                for w in 0..jobs {
                    let tx = tx.clone();
                    let queues = &queues;
                    let master = &master;
                    scope.spawn(move || {
                        let worker = Recorder::new();
                        let mut session = AllocSession::new();
                        while let Some(idx) = next_job(queues, w) {
                            let (res, ns) =
                                self.compile_one(&mut session, &funcs[idx], &worker, sink);
                            // The receiver outlives the scope; a send can
                            // only fail if the parent vanished, in which
                            // case there is nobody to report to.
                            let _ = tx.send((idx, res, ns));
                        }
                        if self.record {
                            master.merge_from(&worker);
                        }
                    });
                }
                drop(tx);
                // Drain inside the scope so results land as they finish.
                for (idx, res, ns) in rx {
                    results[idx] = Some(res);
                    per_func_ns[idx] = ns;
                }
            });
        }

        BatchOutput {
            // Every index was pushed to exactly one queue and every pop
            // sends exactly one result, so no slot can still be empty.
            results: results
                .into_iter()
                .enumerate()
                .map(|(i, r)| {
                    r.unwrap_or_else(|| {
                        Err(ParschedError::Panicked {
                            context: format!("batch slot {i}"),
                            message: "worker vanished without a result".to_string(),
                        })
                    })
                })
                .collect(),
            per_func_ns,
            wall: start.elapsed(),
            jobs,
            telemetry: master,
        }
    }

    /// Compiles one function with the worker's private recorder and the
    /// shared sink fanned in, timing it and containing any panic that
    /// escapes the driver's own per-rung containment. The worker's
    /// `session` is rebuilt per function but keeps its allocations.
    fn compile_one(
        &self,
        session: &mut AllocSession,
        func: &Function,
        worker: &Recorder,
        sink: &(dyn Telemetry + Sync),
    ) -> (Result<CompileResult, ParschedError>, u128) {
        let mut sinks: Vec<&dyn Telemetry> = Vec::new();
        if self.record {
            sinks.push(worker);
        }
        if sink.enabled() {
            sinks.push(sink);
        }
        let fanout = Fanout::new(sinks);
        let telemetry: &dyn Telemetry = if fanout.enabled() {
            &fanout
        } else {
            &NullTelemetry
        };
        let t0 = Instant::now();
        let res = catch_unwind(AssertUnwindSafe(|| {
            self.driver
                .compile_resilient_in(&mut *session, func, telemetry)
        }))
        .unwrap_or_else(|payload| {
            Err(ParschedError::Panicked {
                context: format!("{} in batch", func.name()),
                message: panic_message(payload.as_ref()),
            })
        });
        let elapsed = t0.elapsed().as_nanos();
        if self.record {
            // Per-function compile-latency distribution (p50/p90/p99 across
            // the module), merged across workers at join.
            worker.hist("driver.func_ns", elapsed.min(u64::MAX as u128) as u64);
        }
        (res, elapsed)
    }
}

/// Pops the next job for worker `w`: front of its own deque, else steal
/// from the back of the most loaded other deque. Returns `None` only when
/// every deque is empty — the batch is drained.
fn next_job(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    if let Some(idx) = queues[w].lock().ok()?.pop_front() {
        return Some(idx);
    }
    loop {
        // Pick the victim with the most remaining work so steals are rare
        // and coarse; re-scan until a steal succeeds or all are empty
        // (another thief may drain the chosen victim between scan and lock).
        let victim = queues
            .iter()
            .enumerate()
            .filter(|&(v, _)| v != w)
            .map(|(v, q)| (q.lock().map_or(0, |g| g.len()), v))
            .max()?;
        match victim {
            (0, _) => return None,
            (_, v) => {
                if let Some(idx) = queues[v].lock().ok()?.pop_back() {
                    return Some(idx);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;
    use crate::pipeline::Pipeline;

    fn module() -> Vec<Function> {
        vec![
            paper::example1(),
            paper::example2(),
            paper::example1(),
            paper::example2(),
            paper::example1(),
        ]
    }

    fn driver() -> Driver {
        Driver::new(Pipeline::new(paper::machine(8)))
    }

    #[test]
    fn results_keep_input_order_across_worker_counts() {
        let module = module();
        let baseline = BatchDriver::new(driver())
            .with_jobs(1)
            .compile_module(&module, &NullTelemetry);
        for jobs in [2, 3, 8] {
            let out = BatchDriver::new(driver())
                .with_jobs(jobs)
                .compile_module(&module, &NullTelemetry);
            assert_eq!(out.results.len(), module.len());
            for (a, b) in baseline.results.iter().zip(&out.results) {
                let (Ok(a), Ok(b)) = (a, b) else {
                    unreachable!("paper examples compile on every rung")
                };
                assert_eq!(a.function, b.function, "jobs={jobs}");
                assert_eq!(a.stats, b.stats, "jobs={jobs}");
            }
        }
    }

    #[test]
    fn jobs_resolution_clamps_to_module_size() {
        let b = BatchDriver::new(driver()).with_jobs(16);
        assert_eq!(b.resolved_jobs(3), 3);
        assert_eq!(b.resolved_jobs(0), 1);
        assert_eq!(b.jobs(), 16);
        let auto = BatchDriver::new(driver());
        assert!(auto.resolved_jobs(1000) >= 1);
    }

    #[test]
    fn empty_module_is_fine() {
        let out = BatchDriver::new(driver())
            .with_jobs(4)
            .compile_module(&[], &NullTelemetry);
        assert!(out.results.is_empty());
        assert_eq!(out.ok_count(), 0);
        assert_eq!(out.insts_per_sec(), 0.0);
    }

    #[test]
    fn recording_merges_worker_recorders() {
        let module = module();
        let out = BatchDriver::new(driver())
            .with_jobs(2)
            .with_recording(true)
            .compile_module(&module, &NullTelemetry);
        // One driver.compiled count per function, regardless of worker.
        assert_eq!(
            out.telemetry.counter_value("driver.compiled"),
            module.len() as u64
        );
        assert!(out.telemetry.span_count("pipeline.compile") >= module.len());
    }

    #[test]
    fn output_helpers_aggregate() {
        let out = BatchDriver::new(driver())
            .with_jobs(2)
            .compile_module(&module(), &NullTelemetry);
        assert_eq!(out.ok_count(), 5);
        assert_eq!(out.err_count(), 0);
        assert!(out.total_insts() > 0);
        assert_eq!(out.per_func_ns.len(), 5);
        assert!(out.per_func_ns.iter().all(|&ns| ns > 0));
    }

    #[test]
    fn insts_per_sec_is_finite_on_degenerate_batches() {
        let mut out = BatchDriver::new(driver())
            .with_jobs(1)
            .compile_module(&module(), &NullTelemetry);
        assert!(out.total_insts() > 0);
        // A zero-duration wall clock (possible on coarse timers) must not
        // leak inf into --bench-json; the rate degrades to 0.0 instead.
        out.wall = Duration::ZERO;
        assert_eq!(out.insts_per_sec(), 0.0);
        // Denormal-small durations likewise stay finite.
        out.wall = Duration::from_nanos(1);
        assert!(out.insts_per_sec().is_finite());
        // An empty batch with zero wall time is 0.0, not NaN.
        out.results.clear();
        out.wall = Duration::ZERO;
        assert_eq!(out.insts_per_sec(), 0.0);
        // A normal run reports a positive finite rate.
        out.wall = Duration::from_millis(10);
        assert!(out.insts_per_sec() == 0.0); // results were cleared
    }

    #[test]
    fn next_job_drains_and_steals() {
        let queues: Vec<Mutex<VecDeque<usize>>> = vec![
            Mutex::new(VecDeque::from(vec![0, 2])),
            Mutex::new(VecDeque::new()),
        ];
        // Worker 1 owns nothing; it must steal from worker 0's back.
        assert_eq!(next_job(&queues, 1), Some(2));
        assert_eq!(next_job(&queues, 0), Some(0));
        assert_eq!(next_job(&queues, 0), None);
        assert_eq!(next_job(&queues, 1), None);
    }
}
