//! Plain-text table rendering for the experiment binaries.

use std::fmt::Write as _;

/// A simple left-aligned text table accumulated row by row.
///
/// # Examples
///
/// ```
/// use parsched::report::Table;
///
/// let mut t = Table::new(&["strategy", "cycles"]);
/// t.row(&["combined", "7"]);
/// let text = t.render();
/// assert!(text.contains("strategy"));
/// assert!(text.contains("combined"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows
            .push(cells.iter().map(|c| c.as_ref().to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let pad = widths[i] - cell.len();
                out.push_str(cell);
                if i + 1 < ncols {
                    out.push_str(&" ".repeat(pad + 2));
                }
            }
            out.push('\n');
        };
        emit(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["a", "longer"]);
        t.row(&["xxxx", "1"]);
        t.row(&["y", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only one"]);
    }
}
