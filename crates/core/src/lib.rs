//! `parsched` — combined register allocation and instruction scheduling,
//! reproducing Pinter, *"Register Allocation with Instruction Scheduling: a
//! New Approach"*, PLDI 1993.
//!
//! The central idea: build a **parallelizable interference graph** that
//! unions the classic interference graph with the *false-dependence graph*
//! (the pairs of instructions the machine could issue together); coloring
//! that graph allocates registers **without destroying any instruction-level
//! parallelism**. This crate exposes the whole system behind one
//! [`Pipeline`] API and re-exports the underlying subsystem crates.
//!
//! # Quick start
//!
//! ```
//! use parsched::{Pipeline, Strategy};
//!
//! let func = parsched::paper::example1();
//! let machine = parsched::paper::machine(4);
//! let pipeline = Pipeline::new(machine);
//!
//! let combined = pipeline.compile(&func, &Strategy::combined())?;
//! let naive = pipeline.compile(&func, &Strategy::AllocThenSched)?;
//! assert!(combined.stats.cycles <= naive.stats.cycles);
//! # Ok::<(), parsched::PipelineError>(())
//! ```
//!
//! Above the pipeline sit two robustness layers: the [`Driver`] walks a
//! degradation ladder under a resource [`Budget`] instead of failing, and
//! the [`BatchDriver`] shards a whole module's functions across a
//! work-stealing thread pool with deterministic, thread-count-independent
//! output. See `docs/ARCHITECTURE.md` for the full picture.
//!
//! # Crate map
//!
//! | need | crate |
//! |---|---|
//! | IR, parser, interpreter | [`ir`] (re-export of `parsched-ir`) |
//! | machine models | [`machine`] (`parsched-machine`) |
//! | dependence graphs & scheduling | [`sched`] (`parsched-sched`) |
//! | allocators (Chaitin & combined) | [`regalloc`] (`parsched-regalloc`) |
//! | graph algorithms | [`graph`] (`parsched-graph`) |
//! | telemetry sinks | [`telemetry`] (`parsched-telemetry`) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod budget;
pub mod driver;
pub mod error;
pub mod paper;
mod pipeline;
pub mod report;

pub use batch::{BatchDriver, BatchOutput};
pub use budget::Budget;
pub use driver::{DegradationLevel, Driver};
pub use error::ParschedError;
pub use pipeline::{CompileResult, CompileStats, Pipeline, PipelineError, Strategy};

pub use parsched_graph as graph;
pub use parsched_ir as ir;
pub use parsched_machine as machine;
pub use parsched_regalloc as regalloc;
pub use parsched_sched as sched;
pub use parsched_telemetry as telemetry;
