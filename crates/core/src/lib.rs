//! `parsched` — combined register allocation and instruction scheduling,
//! reproducing Pinter, *"Register Allocation with Instruction Scheduling: a
//! New Approach"*, PLDI 1993.
//!
//! The central idea: build a **parallelizable interference graph** that
//! unions the classic interference graph with the *false-dependence graph*
//! (the pairs of instructions the machine could issue together); coloring
//! that graph allocates registers **without destroying any instruction-level
//! parallelism**. This crate exposes the whole system behind one
//! [`Pipeline`] API and re-exports the underlying subsystem crates.
//!
//! # Quick start
//!
//! ```
//! use parsched::prelude::*;
//!
//! let func = parsched::paper::example1();
//! let machine = parsched::paper::machine(4);
//! let pipeline = Pipeline::new(machine);
//!
//! let combined = pipeline.compile(&func, &Strategy::combined(), &NullTelemetry)?;
//! let naive = pipeline.compile(&func, &Strategy::AllocThenSched, &NullTelemetry)?;
//! assert!(combined.stats.cycles <= naive.stats.cycles);
//! # Ok::<(), parsched::PipelineError>(())
//! ```
//!
//! Every phase entry point takes a `&dyn Telemetry` last argument; pass
//! [`NullTelemetry`](parsched_telemetry::NullTelemetry) when you don't
//! care, or a [`Recorder`](parsched_telemetry::Recorder) to capture phase
//! timings and counters such as `pig.rounds` / `pig.full_rebuilds`.
//!
//! Above the pipeline sit two robustness layers: the [`Driver`] walks a
//! degradation ladder under a resource [`Budget`] instead of failing, and
//! the [`BatchDriver`] shards a whole module's functions across a
//! work-stealing thread pool with deterministic, thread-count-independent
//! output. See `docs/ARCHITECTURE.md` for the full picture.
//!
//! # Crate map
//!
//! | need | crate |
//! |---|---|
//! | IR, parser, interpreter | [`ir`] (re-export of `parsched-ir`) |
//! | machine models | [`machine`] (`parsched-machine`) |
//! | dependence graphs & scheduling | [`sched`] (`parsched-sched`) |
//! | allocators (Chaitin & combined) | [`regalloc`] (`parsched-regalloc`) |
//! | exact joint solver (optimality yardstick) | [`exact`] (`parsched-exact`) |
//! | graph algorithms | [`graph`] (`parsched-graph`) |
//! | telemetry sinks | [`telemetry`] (`parsched-telemetry`) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod budget;
pub mod driver;
pub mod error;
pub mod paper;
mod pipeline;
pub mod report;

/// One-stop imports for the common compilation workflow.
///
/// ```
/// use parsched::prelude::*;
///
/// let pipeline = Pipeline::new(parsched::paper::machine(4));
/// let out = pipeline
///     .compile(&parsched::paper::example1(), &Strategy::combined(), &NullTelemetry)?;
/// assert!(out.stats.cycles > 0);
/// # Ok::<(), parsched::PipelineError>(())
/// ```
pub mod prelude {
    pub use crate::batch::{BatchDriver, BatchOutput};
    pub use crate::budget::Budget;
    pub use crate::driver::{DegradationLevel, Driver};
    pub use crate::error::ParschedError;
    pub use crate::pipeline::{
        AllocScope, CompileResult, CompileStats, Pipeline, PipelineError, Strategy,
        StrategyParseError,
    };
    pub use parsched_exact::ExactConfig;
    pub use parsched_graph::{ClosureMode, Reachability};
    pub use parsched_regalloc::AllocSession;
    pub use parsched_sched::{BlockRemap, SchedSession};
    pub use parsched_telemetry::{NullTelemetry, Recorder, Telemetry};
}

pub use batch::{BatchDriver, BatchOutput};
pub use budget::Budget;
pub use driver::{DegradationLevel, Driver};
pub use error::ParschedError;
pub use parsched_graph::{ClosureMode, ClosureModeParseError, Reachability};
pub use pipeline::{
    AllocScope, CompileResult, CompileStats, Pipeline, PipelineError, Strategy, StrategyParseError,
};

pub use parsched_exact as exact;
pub use parsched_graph as graph;
pub use parsched_ir as ir;
pub use parsched_machine as machine;
pub use parsched_regalloc as regalloc;
pub use parsched_sched as sched;
pub use parsched_telemetry as telemetry;
