//! Resource budgets for compilation.
//!
//! A [`Budget`] caps the super-linear work a compilation may do —
//! instruction count per block (transitive closure and PIG construction
//! are quadratic-plus in it), PIG edge count, spill-repair rounds — and
//! can carry a wall-clock deadline. Budgets are checked at the choke
//! points inside the allocators and between pipeline phases; a trip
//! surfaces as a typed [`BudgetExceeded`](parsched_regalloc::BudgetExceeded)
//! error rather than an unbounded compile time or a panic.
//!
//! The default budget is unlimited except for spill rounds (see
//! [`parsched_regalloc::DEFAULT_MAX_ROUNDS`]), matching the pre-budget
//! behaviour of the pipeline.

use parsched_regalloc::AllocLimits;
use std::time::{Duration, Instant};

/// Resource caps for one compilation.
///
/// All caps are optional; `None` means unlimited. Construct with
/// [`Budget::unlimited`] and narrow with the `with_*` builders:
///
/// ```
/// use parsched::Budget;
/// use std::time::Duration;
///
/// let budget = Budget::unlimited()
///     .with_max_block_insts(10_000)
///     .with_deadline_in(Duration::from_secs(5));
/// assert_eq!(budget.max_block_insts, Some(10_000));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Budget {
    /// Largest basic block (in instructions, terminator included) the
    /// quadratic-plus phases will accept.
    pub max_block_insts: Option<usize>,
    /// Largest parallelizable interference graph (in edges) the combined
    /// allocator will color.
    pub max_pig_edges: Option<u64>,
    /// Most spill-and-retry rounds an allocator may take; `None` uses
    /// [`parsched_regalloc::DEFAULT_MAX_ROUNDS`].
    pub max_spill_rounds: Option<u32>,
    /// Wall-clock deadline for the whole compilation.
    pub deadline: Option<Instant>,
}

impl Budget {
    /// A budget with no caps (spill rounds still default to
    /// [`parsched_regalloc::DEFAULT_MAX_ROUNDS`]).
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Caps the instruction count of any single block.
    pub fn with_max_block_insts(mut self, n: usize) -> Budget {
        self.max_block_insts = Some(n);
        self
    }

    /// Caps the PIG edge count.
    pub fn with_max_pig_edges(mut self, n: u64) -> Budget {
        self.max_pig_edges = Some(n);
        self
    }

    /// Caps the spill-and-retry rounds.
    pub fn with_max_spill_rounds(mut self, n: u32) -> Budget {
        self.max_spill_rounds = Some(n);
        self
    }

    /// Sets an absolute wall-clock deadline.
    pub fn with_deadline(mut self, at: Instant) -> Budget {
        self.deadline = Some(at);
        self
    }

    /// Sets the deadline to `d` from now.
    pub fn with_deadline_in(self, d: Duration) -> Budget {
        self.with_deadline(Instant::now() + d)
    }

    /// Lowers this budget to the allocator-level [`AllocLimits`].
    pub fn alloc_limits(&self) -> AllocLimits {
        AllocLimits {
            max_rounds: self.max_spill_rounds,
            max_block_insts: self.max_block_insts,
            max_pig_edges: self.max_pig_edges,
            deadline: self.deadline,
        }
    }

    /// Whether the deadline (if any) has passed.
    pub fn deadline_passed(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_lowers_to_default_limits() {
        let b = Budget::unlimited();
        let l = b.alloc_limits();
        assert_eq!(l.max_rounds, None);
        assert_eq!(l.max_block_insts, None);
        assert_eq!(l.max_pig_edges, None);
        assert!(l.deadline.is_none());
        assert!(!b.deadline_passed());
    }

    #[test]
    fn builders_set_caps_and_deadline_trips() {
        let b = Budget::unlimited()
            .with_max_block_insts(7)
            .with_max_pig_edges(9)
            .with_max_spill_rounds(3)
            .with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(b.max_block_insts, Some(7));
        assert_eq!(b.max_pig_edges, Some(9));
        assert_eq!(b.max_spill_rounds, Some(3));
        assert!(b.deadline_passed());
        assert!(b.alloc_limits().check_deadline("t").is_err());
    }
}
