//! The workspace-wide error type.
//!
//! Every fallible stage of the pipeline — parsing, verification,
//! allocation, scheduling, budget enforcement — surfaces here as one
//! variant of [`ParschedError`], so drivers and the `psc` CLI handle a
//! single type and can map each failure class to a distinct exit code.

use parsched_ir::verify::VerifyError;
use parsched_ir::ParseError;
use parsched_regalloc::allocator::AllocError;
use parsched_regalloc::global::GlobalAllocError;
use parsched_regalloc::BudgetExceeded;
use parsched_sched::SchedError;
use std::error::Error;
use std::fmt;

use crate::pipeline::PipelineError;

/// Any failure the `parsched` pipeline can report.
///
/// Invariant-violation panics inside a compilation are caught by the
/// resilient driver and surface as [`ParschedError::Panicked`]; everything
/// else is constructed directly from the stage errors via `From`.
#[derive(Debug, Clone)]
pub enum ParschedError {
    /// The `.psc` source did not parse.
    Parse(ParseError),
    /// The parsed function failed IR verification.
    Verify(Vec<VerifyError>),
    /// Block-level register allocation failed.
    Alloc(AllocError),
    /// Global (web-based) register allocation failed.
    Global(GlobalAllocError),
    /// Instruction scheduling failed (cyclic dependence graph or an
    /// invalid schedule).
    Sched(SchedError),
    /// A resource budget was exhausted.
    BudgetExceeded {
        /// The phase that tripped the budget (e.g. `pig.edges`).
        phase: &'static str,
        /// The configured limit (0 for deadline trips).
        limit: u64,
        /// The observed value (0 for deadline trips).
        actual: u64,
    },
    /// A compilation stage panicked; the panic was contained by the
    /// driver and the process kept running.
    Panicked {
        /// What was being compiled (function name or strategy label).
        context: String,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// An I/O failure (reading source, writing output).
    Io {
        /// The path involved.
        path: String,
        /// The underlying error message.
        message: String,
    },
    /// The compiled output failed post-compilation translation validation
    /// (`psc --verify`): an independent checker in `parsched-verify` found
    /// a violated invariant in otherwise "successful" output.
    OutputVerify {
        /// The function whose compile failed validation.
        function: String,
        /// How many violations the checkers reported.
        count: usize,
        /// The first violation, rendered for diagnostics.
        first: String,
    },
}

impl ParschedError {
    /// A stable, distinct process exit code for each failure class:
    ///
    /// | code | class |
    /// |---|---|
    /// | 3 | parse |
    /// | 4 | verify |
    /// | 5 | block allocation |
    /// | 6 | global allocation |
    /// | 7 | scheduling |
    /// | 8 | budget exhausted |
    /// | 9 | contained panic |
    /// | 10 | I/O |
    /// | 12 | output failed translation validation (`--verify`) |
    ///
    /// (0 is success; 1 is reserved for generic failure, 2 for usage
    /// errors, 11 for miscompilation detected by `--run`.)
    pub fn exit_code(&self) -> i32 {
        match self {
            ParschedError::Parse(_) => 3,
            ParschedError::Verify(_) => 4,
            ParschedError::Alloc(_) => 5,
            ParschedError::Global(_) => 6,
            ParschedError::Sched(_) => 7,
            ParschedError::BudgetExceeded { .. } => 8,
            ParschedError::Panicked { .. } => 9,
            ParschedError::Io { .. } => 10,
            ParschedError::OutputVerify { .. } => 12,
        }
    }

    /// Short class label for diagnostics and telemetry keys.
    pub fn class(&self) -> &'static str {
        match self {
            ParschedError::Parse(_) => "parse",
            ParschedError::Verify(_) => "verify",
            ParschedError::Alloc(_) => "alloc",
            ParschedError::Global(_) => "global",
            ParschedError::Sched(_) => "sched",
            ParschedError::BudgetExceeded { .. } => "budget",
            ParschedError::Panicked { .. } => "panic",
            ParschedError::Io { .. } => "io",
            ParschedError::OutputVerify { .. } => "output-verify",
        }
    }
}

impl fmt::Display for ParschedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParschedError::Parse(e) => e.fmt(f),
            ParschedError::Verify(errs) => match errs.len() {
                0 => write!(f, "verification failed"),
                1 => write!(f, "verification failed: {}", errs[0]),
                n => write!(
                    f,
                    "verification failed with {n} errors: {} (first)",
                    errs[0]
                ),
            },
            ParschedError::Alloc(e) => e.fmt(f),
            ParschedError::Global(e) => e.fmt(f),
            ParschedError::Sched(e) => e.fmt(f),
            ParschedError::BudgetExceeded {
                phase,
                limit,
                actual,
            } => {
                if *limit == 0 && *actual == 0 {
                    write!(f, "budget exceeded in {phase}: deadline passed")
                } else {
                    write!(f, "budget exceeded in {phase}: {actual} over limit {limit}")
                }
            }
            ParschedError::Panicked { context, message } => {
                write!(f, "internal error compiling {context}: {message}")
            }
            ParschedError::Io { path, message } => write!(f, "{path}: {message}"),
            ParschedError::OutputVerify {
                function,
                count,
                first,
            } => match count {
                1 => write!(f, "output verification failed for @{function}: {first}"),
                n => write!(
                    f,
                    "output verification failed for @{function} with {n} violations: \
                     {first} (first)"
                ),
            },
        }
    }
}

impl Error for ParschedError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParschedError::Parse(e) => Some(e),
            ParschedError::Alloc(e) => Some(e),
            ParschedError::Global(e) => Some(e),
            ParschedError::Sched(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for ParschedError {
    fn from(e: ParseError) -> Self {
        ParschedError::Parse(e)
    }
}

impl From<Vec<VerifyError>> for ParschedError {
    fn from(e: Vec<VerifyError>) -> Self {
        ParschedError::Verify(e)
    }
}

impl From<BudgetExceeded> for ParschedError {
    fn from(e: BudgetExceeded) -> Self {
        ParschedError::BudgetExceeded {
            phase: e.phase,
            limit: e.limit,
            actual: e.actual,
        }
    }
}

impl From<AllocError> for ParschedError {
    fn from(e: AllocError) -> Self {
        match e {
            AllocError::Budget(b) => b.into(),
            other => ParschedError::Alloc(other),
        }
    }
}

impl From<GlobalAllocError> for ParschedError {
    fn from(e: GlobalAllocError) -> Self {
        match e {
            GlobalAllocError::Budget(b) => b.into(),
            other => ParschedError::Global(other),
        }
    }
}

impl From<SchedError> for ParschedError {
    fn from(e: SchedError) -> Self {
        ParschedError::Sched(e)
    }
}

impl From<PipelineError> for ParschedError {
    fn from(e: PipelineError) -> Self {
        match e {
            PipelineError::Alloc(e) => e.into(),
            PipelineError::Global(e) => e.into(),
            PipelineError::Sched(e) => e.into(),
            PipelineError::Budget(b) => b.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_and_nonzero() {
        let errs: Vec<ParschedError> = vec![
            ParschedError::Verify(Vec::new()),
            ParschedError::BudgetExceeded {
                phase: "t",
                limit: 1,
                actual: 2,
            },
            ParschedError::Panicked {
                context: "f".into(),
                message: "m".into(),
            },
            ParschedError::Io {
                path: "p".into(),
                message: "m".into(),
            },
            ParschedError::OutputVerify {
                function: "f".into(),
                count: 1,
                first: "v".into(),
            },
        ];
        let mut codes: Vec<i32> = errs.iter().map(ParschedError::exit_code).collect();
        assert!(codes.iter().all(|&c| c > 2));
        codes.dedup();
        assert_eq!(codes.len(), 5, "codes must be pairwise distinct");
        assert!(!codes.contains(&11), "11 belongs to --run miscompiles");
    }

    #[test]
    fn budget_flattens_through_alloc() {
        let b = BudgetExceeded {
            phase: "pig.edges",
            limit: 10,
            actual: 11,
        };
        let e: ParschedError = AllocError::Budget(b).into();
        assert!(matches!(
            e,
            ParschedError::BudgetExceeded {
                phase: "pig.edges",
                ..
            }
        ));
        assert_eq!(e.exit_code(), 8);
    }
}
