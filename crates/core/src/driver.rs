//! The fault-tolerant compilation driver.
//!
//! [`Driver::compile_resilient`] walks a **strategy ladder** — by default
//! `Combined → SchedThenAlloc → AllocThenSched → LinearScanThenSched →
//! SpillEverything` — downgrading one rung at a time when a rung fails
//! (budget exhausted, allocation did not converge) or panics. Each rung
//! runs inside [`std::panic::catch_unwind`], so a poisoned compilation
//! fails that rung, not the process. Every downgrade is recorded as a
//! telemetry event and a `driver.fallback.<class>` counter, and the rung
//! that finally succeeded is reported as the result's
//! [`DegradationLevel`].
//!
//! The floor rung, [`Strategy::SpillEverything`], runs with the budget's
//! caps but *without* the spill-round cap (spilling everything is one
//! round by construction), so a verified input always has a successful
//! rung unless the wall-clock deadline has already passed.

use crate::budget::Budget;
use crate::error::ParschedError;
use crate::pipeline::{CompileResult, Pipeline, Strategy};
use parsched_ir::verify::verify_function;
use parsched_ir::Function;
use parsched_regalloc::AllocSession;
use parsched_telemetry::Telemetry;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// How far down the strategy ladder a resilient compilation had to walk.
///
/// Ordered by severity: `None < SchedThenAlloc < … < SpillEverything`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum DegradationLevel {
    /// The first (preferred) rung succeeded; full quality.
    #[default]
    None,
    /// Fell back to schedule-then-allocate phase ordering.
    SchedThenAlloc,
    /// Fell back to allocate-then-schedule phase ordering.
    AllocThenSched,
    /// Fell back to linear-scan allocation.
    LinearScan,
    /// Hit the floor: every value spilled to memory.
    SpillEverything,
}

impl DegradationLevel {
    /// Short label for diagnostics and `--stats` output.
    pub fn label(&self) -> &'static str {
        match self {
            DegradationLevel::None => "none",
            DegradationLevel::SchedThenAlloc => "sched-then-alloc",
            DegradationLevel::AllocThenSched => "alloc-then-sched",
            DegradationLevel::LinearScan => "linear-scan",
            DegradationLevel::SpillEverything => "spill-everything",
        }
    }

    /// The level a successful fallback to `strategy` represents.
    fn for_strategy(strategy: &Strategy) -> DegradationLevel {
        match strategy {
            Strategy::Combined(_) | Strategy::Exact(_) => DegradationLevel::None,
            Strategy::SchedThenAlloc => DegradationLevel::SchedThenAlloc,
            Strategy::AllocThenSched => DegradationLevel::AllocThenSched,
            Strategy::LinearScanThenSched => DegradationLevel::LinearScan,
            Strategy::SpillEverything => DegradationLevel::SpillEverything,
        }
    }
}

/// A fault-tolerant front end over [`Pipeline`].
///
/// ```
/// use parsched::{paper, Budget, Driver, Pipeline};
///
/// use parsched_telemetry::NullTelemetry;
///
/// let driver = Driver::new(Pipeline::new(paper::machine(4)));
/// let result = driver.compile_resilient(&paper::example1(), &NullTelemetry)?;
/// assert_eq!(result.degradation.label(), "none");
/// # Ok::<(), parsched::ParschedError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Driver {
    pipeline: Pipeline,
    budget: Budget,
    ladder: Vec<Strategy>,
}

impl Driver {
    /// A driver over `pipeline` with an unlimited [`Budget`] and the
    /// default ladder.
    pub fn new(pipeline: Pipeline) -> Driver {
        Driver {
            pipeline,
            budget: Budget::unlimited(),
            ladder: Driver::default_ladder(),
        }
    }

    /// The default strategy ladder, best quality first.
    pub fn default_ladder() -> Vec<Strategy> {
        vec![
            Strategy::combined(),
            Strategy::SchedThenAlloc,
            Strategy::AllocThenSched,
            Strategy::LinearScanThenSched,
            Strategy::SpillEverything,
        ]
    }

    /// Replaces the budget.
    pub fn with_budget(mut self, budget: Budget) -> Driver {
        self.budget = budget;
        self
    }

    /// Replaces the ladder. Empty ladders are replaced by the default.
    pub fn with_ladder(mut self, ladder: Vec<Strategy>) -> Driver {
        self.ladder = if ladder.is_empty() {
            Driver::default_ladder()
        } else {
            ladder
        };
        self
    }

    /// The configured budget.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// The configured ladder.
    pub fn ladder(&self) -> &[Strategy] {
        &self.ladder
    }

    /// The underlying pipeline.
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// Compiles `func`, walking the strategy ladder on failure.
    ///
    /// The input is verified first — malformed IR is rejected up front as
    /// [`ParschedError::Verify`] rather than fed to five allocators. Each
    /// rung then runs under the driver's budget inside `catch_unwind`; on
    /// failure the driver emits a `driver.fallback.<class>` counter and a
    /// `driver.fallback` event and tries the next rung. The floor rung
    /// runs without the spill-round cap. If every rung fails, the *first*
    /// rung's error is returned (it describes the preferred strategy).
    ///
    /// Downgrades are reported to `telemetry`. A faulty sink is part of
    /// the threat model: telemetry emitted by the driver itself is wrapped
    /// in `catch_unwind`, and a sink that panics mid-compilation fails
    /// only that rung.
    ///
    /// # Errors
    /// Any [`ParschedError`]; with the default ladder this is only
    /// possible for verification failures, a passed deadline, or a
    /// panic in every rung.
    pub fn compile_resilient(
        &self,
        func: &Function,
        telemetry: &dyn Telemetry,
    ) -> Result<CompileResult, ParschedError> {
        let mut session = AllocSession::new();
        self.compile_resilient_in(&mut session, func, telemetry)
    }

    /// [`Driver::compile_resilient`] running inside a caller-owned
    /// [`AllocSession`] (see [`Pipeline::compile_budgeted_in`]); the batch
    /// driver gives each worker one session reused across its whole stripe
    /// of functions.
    ///
    /// # Errors
    /// As [`Driver::compile_resilient`].
    pub fn compile_resilient_in(
        &self,
        session: &mut AllocSession,
        func: &Function,
        telemetry: &dyn Telemetry,
    ) -> Result<CompileResult, ParschedError> {
        verify_function(func, false).map_err(ParschedError::Verify)?;

        let mut first_err: Option<ParschedError> = None;
        for (rung, strategy) in self.ladder.iter().enumerate() {
            if self.budget.deadline_passed() {
                // No rung can beat a clock that has already run out.
                quiet_telemetry(telemetry, |t| {
                    t.counter("driver.fallback.budget", 1);
                    t.event(
                        "driver.budget",
                        &format!("{}: deadline passed before rung {}", func.name(), rung),
                    );
                });
                return Err(first_err.unwrap_or(ParschedError::BudgetExceeded {
                    phase: "driver.deadline",
                    limit: 0,
                    actual: 0,
                }));
            }
            let budget = if matches!(strategy, Strategy::SpillEverything) {
                // The floor must not fail on a round cap meant for the
                // iterative allocators above it.
                Budget {
                    max_spill_rounds: None,
                    ..self.budget
                }
            } else {
                self.budget
            };
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                self.pipeline
                    .compile_budgeted_in(&mut *session, func, strategy, &budget, telemetry)
            }));
            let err: ParschedError = match attempt {
                Ok(Ok(mut result)) => {
                    let level = if rung == 0 {
                        DegradationLevel::None
                    } else {
                        DegradationLevel::for_strategy(strategy)
                    };
                    result.degradation = level;
                    quiet_telemetry(telemetry, |t| {
                        t.counter("driver.compiled", 1);
                        t.gauge("driver.degradation", rung as u64);
                        if rung > 0 {
                            t.event("driver.degraded", level.label());
                        }
                    });
                    return Ok(result);
                }
                Ok(Err(e)) => e.into(),
                Err(payload) => ParschedError::Panicked {
                    context: format!("{} with {}", func.name(), strategy.label()),
                    message: panic_message(payload.as_ref()),
                },
            };
            quiet_telemetry(telemetry, |t| {
                t.counter(fallback_counter(&err), 1);
                t.event("driver.fallback", strategy.label());
            });
            first_err.get_or_insert(err);
        }
        Err(first_err.unwrap_or(ParschedError::BudgetExceeded {
            phase: "driver.deadline",
            limit: 0,
            actual: 0,
        }))
    }

    /// Compiles every function independently; one poisoned function fails
    /// its own entry, never its neighbours. One [`AllocSession`] is reused
    /// across the whole batch.
    pub fn compile_batch(&self, funcs: &[Function]) -> Vec<Result<CompileResult, ParschedError>> {
        let mut session = AllocSession::new();
        funcs
            .iter()
            .map(|f| self.compile_resilient_in(&mut session, f, &parsched_telemetry::NullTelemetry))
            .collect()
    }
}

/// The `driver.fallback.<class>` counter key for a rung failure.
fn fallback_counter(err: &ParschedError) -> &'static str {
    match err.class() {
        "alloc" => "driver.fallback.alloc",
        "global" => "driver.fallback.global",
        "sched" => "driver.fallback.sched",
        "budget" => "driver.fallback.budget",
        "panic" => "driver.fallback.panic",
        _ => "driver.fallback.other",
    }
}

/// Emits telemetry, containing any panic from a faulty sink.
fn quiet_telemetry(telemetry: &dyn Telemetry, f: impl FnOnce(&dyn Telemetry)) {
    if telemetry.enabled() {
        let _ = catch_unwind(AssertUnwindSafe(|| f(telemetry)));
    }
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    #[test]
    fn healthy_input_does_not_degrade() {
        let driver = Driver::new(Pipeline::new(paper::machine(4)));
        let r = driver
            .compile_resilient(&paper::example1(), &parsched_telemetry::NullTelemetry)
            .unwrap();
        assert_eq!(r.degradation, DegradationLevel::None);
    }

    #[test]
    fn ladder_and_budget_accessors() {
        let driver = Driver::new(Pipeline::new(paper::machine(4)))
            .with_budget(Budget::unlimited().with_max_spill_rounds(2))
            .with_ladder(vec![Strategy::SpillEverything]);
        assert_eq!(driver.ladder().len(), 1);
        assert_eq!(driver.budget().max_spill_rounds, Some(2));
        let r = driver
            .compile_resilient(&paper::example1(), &parsched_telemetry::NullTelemetry)
            .unwrap();
        // A one-rung ladder that succeeds on its first rung reports None.
        assert_eq!(r.degradation, DegradationLevel::None);
    }

    #[test]
    fn empty_ladder_falls_back_to_default() {
        let driver = Driver::new(Pipeline::new(paper::machine(4))).with_ladder(Vec::new());
        assert_eq!(driver.ladder().len(), 5);
    }

    #[test]
    fn degradation_levels_order_by_severity() {
        assert!(DegradationLevel::None < DegradationLevel::SchedThenAlloc);
        assert!(DegradationLevel::LinearScan < DegradationLevel::SpillEverything);
        assert_eq!(DegradationLevel::default(), DegradationLevel::None);
    }
}
