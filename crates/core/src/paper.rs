//! The paper's worked examples as constructors.
//!
//! These are the exact programs Pinter (PLDI 1993) reasons about, encoded
//! in the workspace IR. The tests under `tests/paper_figures.rs` reproduce
//! every figure from them.
//!
//! One modeling note, documented in DESIGN.md: in Example 1 the statement
//! `s2 := i` can — in the paper's walk-through — issue alongside both a
//! load and a fixed-point add, so it is encoded as a float-unit copy
//! (`fadd s9, 0`) to contend with neither the fetch nor the fixed unit.

use parsched_ir::{parse_function, Function};
use parsched_machine::{presets, MachineDesc};

/// Parses one of the constant example sources below. They are fixed
/// strings checked by this crate's tests, so a parse failure is
/// impossible by construction.
fn parse_example(src: &str) -> Function {
    match parse_function(src) {
        Ok(f) => f,
        Err(e) => unreachable!("built-in paper example must parse: {e}"),
    }
}

/// The paper's walk-through machine: fixed-point, floating-point, fetch
/// and branch units, one of each, with `num_regs` registers.
pub fn machine(num_regs: u32) -> MachineDesc {
    presets::paper_machine(num_regs)
}

/// Example 1(b): the running example of the introduction.
///
/// ```text
/// x := a[i]        s1 := load z        (the paper keeps an extra load z)
/// y := 2 + 2       s2 := i
/// z := x*5 + 2     s3 := a[s2]
///                  s4 := s1 + s1
///                  s5 := s3 * 5 + s1
/// ```
///
/// `s9` is the incoming value of `i`.
pub fn example1() -> Function {
    parse_example(
        r#"
        func @example1(s9) {
        entry:
            s1 = load [@z + 0]
            s2 = fadd s9, 0
            s3 = load [s2 + 0]
            s4 = add s1, s1
            s5 = mul s3, s1
            ret s5
        }
        "#,
    )
}

/// Example 1(c): the paper's allocation with `r1`/`r2` reuse that
/// introduces a false dependence between the second and fourth
/// instructions.
pub fn example1_paper_alloc() -> Function {
    parse_example(
        r#"
        func @example1c(r9) {
        entry:
            r1 = load [@z + 0]
            r2 = fadd r9, 0
            r3 = load [r2 + 0]
            r2 = add r1, r1
            r1 = mul r3, r1
            ret r1
        }
        "#,
    )
}

/// The paper's alternative three-register allocation for Example 1
/// (`s1-r1, s2-r2, s3-r2, s4-r3, s5-r2`) that introduces no false
/// dependence — the allocation Figure 3 exhibits.
pub fn example1_good_alloc() -> Function {
    parse_example(
        r#"
        func @example1good(r9) {
        entry:
            r1 = load [@z + 0]
            r2 = fadd r9, 0
            r2 = load [r2 + 0]
            r3 = add r1, r1
            r2 = mul r2, r1
            ret r2
        }
        "#,
    )
}

/// Example 2 (Section 3): two fixed-point loads feeding a fixed-point
/// chain, two float loads feeding a float chain, joined at the end.
pub fn example2() -> Function {
    parse_example(
        r#"
        func @example2() {
        entry:
            s1 = load [@z + 0]
            s2 = load [@y + 0]
            s3 = add s1, s2
            s4 = mul s1, s2
            s5 = add s3, s4
            s6 = fload [@x + 0]
            s7 = fload [@w + 0]
            s8 = fmul s7, s6
            s9 = fadd s5, s8
            ret s9
        }
        "#,
    )
}

/// Figure 5's register assignment for Example 2: `r1 ← {s1,s6,s9}`,
/// `r2 ← {s2,s4}`, `r3 ← {s3,s5}`, `r4 ← {s7,s8}`.
pub fn example2_figure5_alloc() -> Function {
    parse_example(
        r#"
        func @example2fig5() {
        entry:
            r1 = load [@z + 0]
            r2 = load [@y + 0]
            r3 = add r1, r2
            r2 = mul r1, r2
            r3 = add r3, r2
            r1 = fload [@x + 0]
            r4 = fload [@w + 0]
            r4 = fmul r4, r1
            r1 = fadd r3, r4
            ret r1
        }
        "#,
    )
}

/// The Figure 6 situation: a variable defined on both arms of a
/// conditional and used after the join — its def-use chains combine into
/// one non-linear live interval (one web).
pub fn figure6() -> Function {
    parse_example(
        r#"
        func @figure6(s0) {
        entry:
            beq s0, 0, other
        then:
            s1 = li 1
            jmp join
        other:
            s1 = li 2
        join:
            s2 = add s1, s1
            ret s2
        }
        "#,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsched_ir::verify::verify_function;

    #[test]
    fn all_examples_verify() {
        for f in [example1(), example2(), figure6()] {
            verify_function(&f, true).expect("symbolic examples are strict-clean");
        }
        for f in [
            example1_paper_alloc(),
            example1_good_alloc(),
            example2_figure5_alloc(),
        ] {
            verify_function(&f, false).expect("allocated examples are well-formed");
        }
    }

    #[test]
    fn shapes_match_paper() {
        assert_eq!(example1().inst_count(), 6);
        assert_eq!(example2().inst_count(), 10);
        assert_eq!(figure6().block_count(), 4);
    }
}
