//! The compilation pipeline: strategy selection, allocation, scheduling,
//! and statistics.

use crate::budget::Budget;
use crate::driver::DegradationLevel;
use parsched_exact::{ExactConfig, ExactError};
use parsched_graph::ClosureMode;
use parsched_ir::{BlockId, Function};
use parsched_machine::MachineDesc;
use parsched_regalloc::allocator::{allocate_single_block_in, AllocError, BlockStrategy};
use parsched_regalloc::global::{
    allocate_global_scoped, GlobalAllocError, GlobalScope, GlobalStrategy,
};
use parsched_regalloc::{AllocSession, BudgetExceeded, PinterConfig};
use parsched_sched::falsedep::count_false_deps_until;
use parsched_sched::{list_schedule, SchedError};
use parsched_telemetry::Telemetry;
use std::error::Error;
use std::fmt;

/// How register allocation and instruction scheduling are ordered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// Allocate first (Chaitin, parallelism-blind), then schedule the
    /// physical code — the MIPS-style phase order. Register reuse may
    /// introduce false dependences that serialize issue.
    AllocThenSched,
    /// List-schedule the symbolic code first, then allocate (Chaitin) over
    /// the stretched live ranges — the RS/6000-style phase order. Keeps
    /// parallelism but raises pressure and spills.
    SchedThenAlloc,
    /// Linear-scan allocation first, then schedule — the fastest-compile
    /// baseline (single-block functions only; multi-block functions fall
    /// back to the global Chaitin allocator).
    LinearScanThenSched,
    /// The paper's approach: color the parallelizable interference graph,
    /// then schedule. With enough registers this provably introduces no
    /// false dependence (Theorem 1).
    Combined(PinterConfig),
    /// Degradation floor: spill every original value to memory and
    /// schedule the residue. Produces the worst code the pipeline can emit
    /// but succeeds on any verified input under any register count — the
    /// last rung of the resilience ladder.
    SpillEverything,
    /// Exact branch-and-bound over the joint (schedule order × register
    /// assignment) space: lexicographically minimal (spills, registers,
    /// cycles) for single blocks up to the configured size cap, with a
    /// typed refusal beyond it. The optimality yardstick every heuristic
    /// rung is measured against (`fuzz --gap`); see `docs/EXACT.md`.
    Exact(ExactConfig),
}

impl Strategy {
    /// The combined strategy with the paper's default configuration.
    pub fn combined() -> Strategy {
        Strategy::Combined(PinterConfig::default())
    }

    /// The exact strategy with the default size and node caps.
    pub fn exact() -> Strategy {
        Strategy::Exact(ExactConfig::default())
    }

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::AllocThenSched => "alloc-then-sched",
            Strategy::SchedThenAlloc => "sched-then-alloc",
            Strategy::LinearScanThenSched => "linear-scan",
            Strategy::Combined(_) => "combined",
            Strategy::SpillEverything => "spill-everything",
            Strategy::Exact(_) => "exact",
        }
    }

    /// Parses a command-line strategy name (`combined`, `alloc-first`,
    /// `sched-first`, `linear-scan`, `spill-everything`, `exact`) into the
    /// strategy with its default configuration.
    ///
    /// # Errors
    /// Returns [`StrategyParseError`] (whose message enumerates every
    /// valid name) for anything else.
    pub fn parse(name: &str) -> Result<Strategy, StrategyParseError> {
        match name {
            "combined" => Ok(Strategy::combined()),
            "alloc-first" => Ok(Strategy::AllocThenSched),
            "sched-first" => Ok(Strategy::SchedThenAlloc),
            "linear-scan" => Ok(Strategy::LinearScanThenSched),
            "spill-everything" => Ok(Strategy::SpillEverything),
            "exact" => Ok(Strategy::exact()),
            other => Err(StrategyParseError {
                name: other.to_string(),
            }),
        }
    }
}

impl std::str::FromStr for Strategy {
    type Err = StrategyParseError;

    fn from_str(s: &str) -> Result<Strategy, StrategyParseError> {
        Strategy::parse(s)
    }
}

/// An unrecognized command-line strategy name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrategyParseError {
    /// The rejected name.
    pub name: String,
}

impl fmt::Display for StrategyParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown strategy `{}`: expected combined, alloc-first, sched-first, \
             linear-scan, spill-everything, or exact",
            self.name
        )
    }
}

impl Error for StrategyParseError {}

/// At what scope the allocator makes register-sharing decisions.
///
/// Orthogonal to [`Strategy`]: the strategy picks the coloring backend
/// (Chaitin, the paper's combined PIG coloring, ...), the scope picks the
/// unit over which values may share registers. See `docs/GLOBAL.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocScope {
    /// Single-block functions use the block-level allocators; multi-block
    /// functions use the global (web-based) allocator. The default.
    #[default]
    Auto,
    /// Always allocate over webs, function-wide — one color per web even
    /// for single-block functions (`psc --global`).
    Global,
    /// Per-block baseline: block-local webs share registers but every web
    /// crossing a block boundary gets a *dedicated* register — the
    /// classical pre-web global discipline the paper's webs improve on
    /// (`psc --per-block`). Single-block functions are unaffected.
    PerBlock,
}

impl AllocScope {
    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            AllocScope::Auto => "auto",
            AllocScope::Global => "global",
            AllocScope::PerBlock => "per-block",
        }
    }
}

/// Aggregate statistics of one compilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompileStats {
    /// Physical registers used.
    pub registers_used: u32,
    /// Values (or webs) spilled.
    pub spilled_values: usize,
    /// Loads/stores inserted by spilling.
    pub inserted_mem_ops: usize,
    /// False-dependence edges the combined allocator gave up.
    pub removed_false_edges: usize,
    /// False (output) dependences present in the final code relative to
    /// its pre-allocation form — the quantity Theorem 1 drives to zero.
    pub introduced_false_deps: usize,
    /// Static schedule length: sum over blocks of completion cycles.
    pub cycles: u32,
    /// Final instruction count (spill code included).
    pub inst_count: usize,
}

/// A compiled function: allocated, scheduled, and measured.
#[derive(Debug, Clone)]
pub struct CompileResult {
    /// The final function: physical registers, instructions in scheduled
    /// order within each block.
    pub function: Function,
    /// Per-block completion cycles.
    pub block_cycles: Vec<u32>,
    /// Aggregate statistics.
    pub stats: CompileStats,
    /// How far down the resilience ladder the driver had to walk to
    /// produce this result. [`DegradationLevel::None`] unless the result
    /// came from [`crate::Driver::compile_resilient`] after a fallback.
    pub degradation: DegradationLevel,
}

/// Pipeline failures.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// Block-level allocation failed.
    Alloc(AllocError),
    /// Global allocation failed.
    Global(GlobalAllocError),
    /// Scheduling failed (cyclic dependence graph or invalid schedule).
    Sched(SchedError),
    /// A resource budget was exhausted before compilation finished.
    Budget(BudgetExceeded),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Alloc(e) => e.fmt(f),
            PipelineError::Global(e) => e.fmt(f),
            PipelineError::Sched(e) => e.fmt(f),
            PipelineError::Budget(e) => e.fmt(f),
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::Alloc(e) => Some(e),
            PipelineError::Global(e) => Some(e),
            PipelineError::Sched(e) => Some(e),
            PipelineError::Budget(e) => Some(e),
        }
    }
}

impl From<AllocError> for PipelineError {
    fn from(e: AllocError) -> Self {
        // Surface budget trips uniformly regardless of which allocator hit
        // them, so the driver can distinguish "out of budget" from "cannot
        // allocate".
        match e {
            AllocError::Budget(b) => PipelineError::Budget(b),
            other => PipelineError::Alloc(other),
        }
    }
}

impl From<GlobalAllocError> for PipelineError {
    fn from(e: GlobalAllocError) -> Self {
        match e {
            GlobalAllocError::Budget(b) => PipelineError::Budget(b),
            other => PipelineError::Global(other),
        }
    }
}

impl From<SchedError> for PipelineError {
    fn from(e: SchedError) -> Self {
        PipelineError::Sched(e)
    }
}

impl From<BudgetExceeded> for PipelineError {
    fn from(e: BudgetExceeded) -> Self {
        PipelineError::Budget(e)
    }
}

/// The compilation pipeline for one machine.
#[derive(Debug, Clone)]
pub struct Pipeline {
    machine: MachineDesc,
    merge_chains: bool,
    optimize: bool,
    scope: AllocScope,
    closure: ClosureMode,
}

impl Pipeline {
    /// Creates a pipeline targeting `machine`.
    pub fn new(machine: MachineDesc) -> Pipeline {
        Pipeline {
            machine,
            merge_chains: false,
            optimize: false,
            scope: AllocScope::Auto,
            closure: ClosureMode::Auto,
        }
    }

    /// Sets the allocation [`AllocScope`]: [`AllocScope::Auto`] (default),
    /// [`AllocScope::Global`] (webs function-wide, even for single-block
    /// functions), or [`AllocScope::PerBlock`] (dedicated registers for
    /// cross-block webs — the measurement baseline).
    pub fn with_scope(mut self, scope: AllocScope) -> Pipeline {
        self.scope = scope;
        self
    }

    /// The configured allocation scope.
    pub fn scope(&self) -> AllocScope {
        self.scope
    }

    /// Enables the pre-allocation clean-up passes (copy propagation,
    /// constant folding, dead-code elimination) — the optimizer front end
    /// the paper assumes its input has already been through.
    pub fn with_optimizations(mut self, enable: bool) -> Pipeline {
        self.optimize = enable;
        self
    }

    /// Enables fall-through chain merging before compilation: control-
    /// equivalent chain regions become single blocks, realizing the paper's
    /// region-scheduling idea for the always-safe case.
    pub fn with_chain_merging(mut self, enable: bool) -> Pipeline {
        self.merge_chains = enable;
        self
    }

    /// Sets the reachability backend policy ([`ClosureMode::Auto`] by
    /// default): which representation the combined strategy's sessions use
    /// for the transitive closure of each block's dependence graph. Exposed
    /// as `psc --closure {auto,dense,sparse}` for benchmarking; the output
    /// is byte-identical under every mode.
    pub fn with_closure(mut self, mode: ClosureMode) -> Pipeline {
        self.closure = mode;
        self
    }

    /// The configured reachability backend policy.
    pub fn closure(&self) -> ClosureMode {
        self.closure
    }

    /// The target machine.
    pub fn machine(&self) -> &MachineDesc {
        &self.machine
    }

    /// Compiles `func` (symbolic registers) under `strategy`: register
    /// allocation per the strategy, then list scheduling of every block,
    /// with blocks rewritten into scheduled order.
    ///
    /// Single-block functions use the block-level allocators; multi-block
    /// functions use the global (web-based) allocators.
    ///
    /// Phases appear as spans on `telemetry` (`pipeline.merge_chains`,
    /// `pipeline.optimize`, `pipeline.pre_schedule`, `pipeline.allocate`,
    /// `pipeline.false_dep_count`, `pipeline.final_schedule`) nested under
    /// one `pipeline.compile` span. The final [`CompileStats`] fields are
    /// emitted once, authoritatively, as `stats.*` counters
    /// (`stats.registers_used`, `stats.spilled_values`,
    /// `stats.inserted_mem_ops`, `stats.removed_false_edges`,
    /// `stats.introduced_false_deps`, `stats.cycles`, `stats.inst_count`),
    /// so a recording sink can cross-check them against the returned value.
    /// Pass [`parsched_telemetry::NullTelemetry`] when observability is not
    /// needed.
    ///
    /// # Errors
    /// Returns [`PipelineError`] when allocation fails (e.g. spilling does
    /// not converge on a pathological input).
    pub fn compile(
        &self,
        func: &Function,
        strategy: &Strategy,
        telemetry: &dyn Telemetry,
    ) -> Result<CompileResult, PipelineError> {
        self.compile_budgeted(func, strategy, &Budget::unlimited(), telemetry)
    }

    /// [`Pipeline::compile`] under a resource [`Budget`].
    ///
    /// Budget caps are checked at the super-linear choke points (PIG
    /// construction, transitive closure, spill iteration); the deadline is
    /// additionally checked between phases. The statistics-only false-
    /// dependence count is *skipped* (not failed) for blocks over the
    /// instruction cap, with a `pipeline.false_dep_count.skipped` event.
    ///
    /// # Errors
    /// Returns [`PipelineError::Budget`] when a cap or the deadline trips,
    /// and the other variants as [`Pipeline::compile`] does.
    pub fn compile_budgeted(
        &self,
        func: &Function,
        strategy: &Strategy,
        budget: &Budget,
        telemetry: &dyn Telemetry,
    ) -> Result<CompileResult, PipelineError> {
        let mut session = AllocSession::new();
        self.compile_budgeted_in(&mut session, func, strategy, budget, telemetry)
    }

    /// [`Pipeline::compile_budgeted`] running inside a caller-owned
    /// [`AllocSession`]: the dependence graph and transitive closure of the
    /// combined strategy persist across spill rounds (updated
    /// incrementally) and across calls, which is how the batch driver
    /// amortizes PIG construction over a whole module.
    ///
    /// # Errors
    /// Same contract as [`Pipeline::compile_budgeted`].
    pub fn compile_budgeted_in(
        &self,
        session: &mut AllocSession,
        func: &Function,
        strategy: &Strategy,
        budget: &Budget,
        telemetry: &dyn Telemetry,
    ) -> Result<CompileResult, PipelineError> {
        let _compile_span = parsched_telemetry::span(telemetry, "pipeline.compile");
        let limits = budget.alloc_limits();
        let mut func = if self.merge_chains {
            let _span = parsched_telemetry::span(telemetry, "pipeline.merge_chains");
            parsched_ir::simplify::merge_chains(func)
        } else {
            func.clone()
        };
        if self.optimize {
            let _span = parsched_telemetry::span(telemetry, "pipeline.optimize");
            use parsched_ir::opt;
            opt::propagate_copies(&mut func);
            opt::fold_constants(&mut func);
            opt::eliminate_dead_code(&mut func);
        }
        let func = &func;
        // The exact strategy replaces the whole allocate/schedule phase
        // pair with one joint search; its emitted order *is* the schedule.
        if let Strategy::Exact(cfg) = strategy {
            return self.compile_exact(func, cfg, &limits, telemetry);
        }
        // Phase order.
        let pre_scheduled = match strategy {
            Strategy::SchedThenAlloc => {
                let _span = parsched_telemetry::span(telemetry, "pipeline.pre_schedule");
                limits.check_deadline("pipeline.pre_schedule")?;
                self.schedule_blocks_measured(func, telemetry)?.0
            }
            _ => func.clone(),
        };

        let (mut allocated, mut stats) = {
            let _span = parsched_telemetry::span(telemetry, "pipeline.allocate");
            self.allocate(session, &pre_scheduled, strategy, &limits, telemetry)?
        };
        // Allocation can map a copy's source and destination to one
        // register; drop the resulting identity copies before scheduling.
        parsched_regalloc::assignment::remove_identity_copies(&mut allocated);

        // Count false dependences intrinsically: each allocated block is
        // renamed apart to recover its symbolic form, and the block's own
        // register output dependences are tested against the resulting Ef.
        // The count is statistics-only, so budget pressure skips it (per
        // block) instead of failing the compilation: it builds a transitive
        // closure, the most expensive phase on pathological blocks.
        stats.introduced_false_deps = self.count_false_deps(&allocated, &limits, telemetry);

        // Final scheduling of the allocated code.
        limits.check_deadline("pipeline.final_schedule")?;
        let (final_fn, block_cycles) = {
            let _span = parsched_telemetry::span(telemetry, "pipeline.final_schedule");
            self.schedule_blocks_measured(&allocated, telemetry)?
        };
        stats.cycles = block_cycles.iter().sum();
        stats.inst_count = final_fn.inst_count();
        emit_stats(&stats, telemetry);
        Ok(CompileResult {
            function: final_fn,
            block_cycles,
            stats,
            degradation: DegradationLevel::None,
        })
    }

    /// The [`Strategy::Exact`] path: one joint branch-and-bound search
    /// replaces the allocate → schedule phase pair. The solver's typed
    /// refusals map onto the same [`PipelineError`] variants the heuristic
    /// rungs produce, so the driver ladder degrades through them
    /// identically.
    fn compile_exact(
        &self,
        func: &Function,
        cfg: &ExactConfig,
        limits: &parsched_regalloc::AllocLimits,
        telemetry: &dyn Telemetry,
    ) -> Result<CompileResult, PipelineError> {
        let sol = parsched_exact::solve(func, &self.machine, cfg, limits.deadline, telemetry)
            .map_err(|e| match e {
                ExactError::NotSingleBlock { blocks } => {
                    PipelineError::Alloc(AllocError::NotSingleBlock { blocks })
                }
                ExactError::TooLarge { insts, cap } => PipelineError::Budget(BudgetExceeded {
                    phase: "exact.max_insts",
                    limit: cap as u64,
                    actual: insts as u64,
                }),
                ExactError::Problem(p) => PipelineError::Alloc(AllocError::Problem(p)),
                // Spilling cannot shrink the entry live set, so no round
                // limit would ever converge; report what the allocators
                // would after discovering the same thing the hard way.
                ExactError::Infeasible { .. } => {
                    PipelineError::Alloc(AllocError::TooManyRounds { limit: 0 })
                }
            })?;
        let mut stats = CompileStats {
            registers_used: sol.registers_used,
            spilled_values: sol.spilled_values,
            inserted_mem_ops: sol.inserted_mem_ops,
            removed_false_edges: 0,
            introduced_false_deps: 0,
            cycles: sol.cycles(),
            inst_count: sol.function.inst_count(),
        };
        stats.introduced_false_deps = self.count_false_deps(&sol.function, limits, telemetry);
        emit_stats(&stats, telemetry);
        Ok(CompileResult {
            function: sol.function,
            block_cycles: sol.block_cycles,
            stats,
            degradation: DegradationLevel::None,
        })
    }

    /// Counts false dependences intrinsically: each allocated block is
    /// renamed apart to recover its symbolic form, and the block's own
    /// register output dependences are tested against the resulting Ef.
    /// The count is statistics-only, so budget pressure skips it (per
    /// block) instead of failing the compilation: it builds a transitive
    /// closure, the most expensive phase on pathological blocks.
    fn count_false_deps(
        &self,
        allocated: &Function,
        limits: &parsched_regalloc::AllocLimits,
        telemetry: &dyn Telemetry,
    ) -> usize {
        let _span = parsched_telemetry::span(telemetry, "pipeline.false_dep_count");
        let cap = limits.max_block_insts.unwrap_or(usize::MAX);
        (0..allocated.block_count())
            .map(|b| {
                let block = allocated.block(BlockId(b));
                let counted = if block.insts().len() > cap {
                    None
                } else {
                    count_false_deps_until(block, &self.machine, limits.deadline)
                };
                counted.unwrap_or_else(|| {
                    if telemetry.enabled() {
                        telemetry.event("pipeline.false_dep_count.skipped", block.label());
                    }
                    0
                })
            })
            .sum()
    }

    /// Schedules every block of the final code and reports per-block
    /// completion cycles without allocating (used on physical code), with
    /// one `sched.block` span per block (the block's label in a
    /// `sched.block` event) and a `sched.block_cycles` counter per block.
    ///
    /// # Errors
    /// Returns [`SchedError`] when a block's dependence graph is cyclic or
    /// the scheduler produces an invalid schedule.
    pub fn schedule_blocks_measured(
        &self,
        func: &Function,
        telemetry: &dyn Telemetry,
    ) -> Result<(Function, Vec<u32>), SchedError> {
        let mut out = func.clone();
        let mut cycles = Vec::with_capacity(func.block_count());
        for b in 0..func.block_count() {
            let block = func.block(BlockId(b));
            let _span = parsched_telemetry::span(telemetry, "sched.block");
            if telemetry.enabled() {
                telemetry.event("sched.block", block.label());
            }
            let deps = parsched_sched::DepGraph::build(block, telemetry);
            let schedule = list_schedule(
                block,
                &deps,
                &self.machine,
                parsched_sched::SchedPriority::CriticalPath,
                telemetry,
            )?;
            if telemetry.enabled() {
                telemetry.counter(
                    "sched.block_cycles",
                    u64::from(schedule.completion_cycles()),
                );
            }
            cycles.push(schedule.completion_cycles());
            *out.block_mut(BlockId(b)) = schedule.linearize(block);
        }
        Ok((out, cycles))
    }

    fn allocate(
        &self,
        session: &mut AllocSession,
        func: &Function,
        strategy: &Strategy,
        limits: &parsched_regalloc::AllocLimits,
        telemetry: &dyn Telemetry,
    ) -> Result<(Function, CompileStats), PipelineError> {
        let mut stats = CompileStats::default();
        session.set_closure_mode(self.closure);
        // Auto keeps single-block functions on the block-level allocators;
        // --global forces the web path everywhere, --per-block only changes
        // multi-block behavior (a single block has no cross-block webs).
        let use_webs = match self.scope {
            AllocScope::Global => true,
            AllocScope::Auto | AllocScope::PerBlock => func.block_count() > 1,
        };
        let allocated = if !use_webs {
            let s = match strategy {
                Strategy::AllocThenSched | Strategy::SchedThenAlloc => BlockStrategy::Chaitin,
                Strategy::LinearScanThenSched => BlockStrategy::LinearScan,
                Strategy::Combined(cfg) => BlockStrategy::Pinter(*cfg),
                Strategy::SpillEverything => BlockStrategy::SpillAll,
                Strategy::Exact(_) => unreachable!("exact strategy bypasses allocate()"),
            };
            let out = allocate_single_block_in(session, func, &self.machine, s, limits, telemetry)?;
            stats.registers_used = out.colors_used;
            stats.spilled_values = out.spilled_values;
            stats.inserted_mem_ops = out.inserted_mem_ops;
            stats.removed_false_edges = out.removed_false_edges;
            out.function
        } else {
            let s = match strategy {
                Strategy::AllocThenSched
                | Strategy::SchedThenAlloc
                | Strategy::LinearScanThenSched => GlobalStrategy::Chaitin,
                Strategy::Combined(cfg) => GlobalStrategy::Pinter(*cfg),
                Strategy::SpillEverything => GlobalStrategy::SpillAll,
                Strategy::Exact(_) => unreachable!("exact strategy bypasses allocate()"),
            };
            let gscope = match self.scope {
                AllocScope::PerBlock => GlobalScope::PerBlockBaseline,
                AllocScope::Auto | AllocScope::Global => GlobalScope::Function,
            };
            let out =
                allocate_global_scoped(func, &self.machine, s, gscope, true, limits, telemetry)?;
            stats.registers_used = out.colors_used;
            stats.spilled_values = out.spilled_webs;
            stats.inserted_mem_ops = out.inserted_mem_ops;
            stats.removed_false_edges = out.removed_false_edges;
            out.function
        };
        Ok((allocated, stats))
    }
}

/// Emits the final [`CompileStats`] once, authoritatively, as `stats.*`
/// counters — shared by the heuristic and exact compile paths.
fn emit_stats(stats: &CompileStats, telemetry: &dyn Telemetry) {
    if telemetry.enabled() {
        telemetry.counter("stats.registers_used", u64::from(stats.registers_used));
        telemetry.counter("stats.spilled_values", stats.spilled_values as u64);
        telemetry.counter("stats.inserted_mem_ops", stats.inserted_mem_ops as u64);
        telemetry.counter(
            "stats.removed_false_edges",
            stats.removed_false_edges as u64,
        );
        telemetry.counter(
            "stats.introduced_false_deps",
            stats.introduced_false_deps as u64,
        );
        telemetry.counter("stats.cycles", u64::from(stats.cycles));
        telemetry.counter("stats.inst_count", stats.inst_count as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;
    use parsched_ir::interp::{Interpreter, Memory};
    use parsched_ir::parse_function;

    fn interp_equal(a: &Function, b: &Function, args: &[i64]) {
        let mut mem = Memory::new();
        for g in ["z", "y", "x", "w"] {
            mem.set_global(g, 0, 42 + g.len() as i64);
        }
        for i in 0..256 {
            mem.set_abs(i, i * 13 + 7);
        }
        let interp = Interpreter::new();
        let ra = interp.run(a, args, mem.clone()).unwrap();
        let rb = interp.run(b, args, mem).unwrap();
        assert_eq!(ra.return_value, rb.return_value);
    }

    #[test]
    fn example1_combined_beats_alloc_first() {
        let func = paper::example1();
        let machine = paper::machine(3);
        let p = Pipeline::new(machine);
        let combined = p
            .compile(
                &func,
                &Strategy::combined(),
                &parsched_telemetry::NullTelemetry,
            )
            .unwrap();
        let naive = p
            .compile(
                &func,
                &Strategy::AllocThenSched,
                &parsched_telemetry::NullTelemetry,
            )
            .unwrap();
        assert_eq!(combined.stats.introduced_false_deps, 0);
        assert!(combined.stats.cycles <= naive.stats.cycles);
        interp_equal(&func, &combined.function, &[1]);
        interp_equal(&func, &naive.function, &[1]);
    }

    #[test]
    fn example2_strategies_all_preserve_semantics() {
        let func = paper::example2();
        let machine = paper::machine(4);
        let p = Pipeline::new(machine);
        for s in [
            Strategy::AllocThenSched,
            Strategy::SchedThenAlloc,
            Strategy::combined(),
        ] {
            let r = p
                .compile(&func, &s, &parsched_telemetry::NullTelemetry)
                .unwrap();
            assert!(r.stats.registers_used <= 4, "{}", s.label());
            interp_equal(&func, &r.function, &[]);
        }
    }

    #[test]
    fn combined_never_more_registers_than_machine() {
        let func = paper::example2();
        for regs in [4, 6, 8] {
            let p = Pipeline::new(paper::machine(regs));
            let r = p
                .compile(
                    &func,
                    &Strategy::combined(),
                    &parsched_telemetry::NullTelemetry,
                )
                .unwrap();
            assert!(r.stats.registers_used <= regs);
        }
    }

    #[test]
    fn multi_block_pipeline_works() {
        let func = parse_function(
            r#"
            func @sum(s0) {
            entry:
                s1 = li 0
                s2 = li 0
            head:
                s3 = slt s2, s0
                beq s3, 0, done
            body:
                s4 = add s1, s2
                s1 = mov s4
                s5 = add s2, 1
                s2 = mov s5
                jmp head
            done:
                ret s1
            }
            "#,
        )
        .unwrap();
        let p = Pipeline::new(paper::machine(8));
        for s in [
            Strategy::AllocThenSched,
            Strategy::SchedThenAlloc,
            Strategy::combined(),
        ] {
            let r = p
                .compile(&func, &s, &parsched_telemetry::NullTelemetry)
                .unwrap();
            assert_eq!(r.block_cycles.len(), 4);
            interp_equal(&func, &r.function, &[9]);
        }
    }

    #[test]
    fn optimizations_shrink_code_and_preserve_semantics() {
        let func = parse_function(
            r#"
            func @opt(s0) {
            entry:
                s1 = li 2
                s2 = li 3
                s3 = mul s1, s2
                s4 = mov s3
                s5 = add s4, s0
                s6 = add s1, 0
                ret s5
            }
            "#,
        )
        .unwrap();
        let machine = paper::machine(8);
        let plain = Pipeline::new(machine.clone());
        let opt = Pipeline::new(machine).with_optimizations(true);
        let r_plain = plain
            .compile(
                &func,
                &Strategy::combined(),
                &parsched_telemetry::NullTelemetry,
            )
            .unwrap();
        let r_opt = opt
            .compile(
                &func,
                &Strategy::combined(),
                &parsched_telemetry::NullTelemetry,
            )
            .unwrap();
        assert!(
            r_opt.stats.inst_count < r_plain.stats.inst_count,
            "{} < {}",
            r_opt.stats.inst_count,
            r_plain.stats.inst_count
        );
        interp_equal(&func, &r_opt.function, &[7]);
    }

    #[test]
    fn chain_merging_preserves_semantics_and_widens_scope() {
        let func = parse_function(
            r#"
            func @chain(s0) {
            a:
                s1 = add s0, 1
                s2 = mul s1, s1
            b:
                s3 = fadd s0, 1
                s4 = fmul s3, s3
            c:
                s5 = add s2, s4
                ret s5
            }
            "#,
        )
        .unwrap();
        let machine = paper::machine(8);
        let plain = Pipeline::new(machine.clone());
        let merged = Pipeline::new(machine).with_chain_merging(true);
        let r_plain = plain
            .compile(
                &func,
                &Strategy::combined(),
                &parsched_telemetry::NullTelemetry,
            )
            .unwrap();
        let r_merged = merged
            .compile(
                &func,
                &Strategy::combined(),
                &parsched_telemetry::NullTelemetry,
            )
            .unwrap();
        assert_eq!(r_merged.function.block_count(), 1);
        assert!(
            r_merged.stats.cycles <= r_plain.stats.cycles,
            "merged {} vs plain {}",
            r_merged.stats.cycles,
            r_plain.stats.cycles
        );
        interp_equal(&func, &r_merged.function, &[3]);
    }

    #[test]
    fn strategy_labels() {
        assert_eq!(Strategy::AllocThenSched.label(), "alloc-then-sched");
        assert_eq!(Strategy::SchedThenAlloc.label(), "sched-then-alloc");
        assert_eq!(Strategy::combined().label(), "combined");
    }
}
