//! Dense square boolean matrix, the backing store for adjacency relations.

use crate::bitset::BitSet;
use std::fmt;

/// A dense `n × n` boolean matrix.
///
/// Rows are [`BitSet`]s, so whole-row operations (union, complement) run a
/// word at a time. This is the representation used for transitive closures
/// and graph complements, both of which Pinter's construction performs on
/// every basic block.
#[derive(PartialEq, Eq)]
pub struct BitMatrix {
    rows: Vec<BitSet>,
    n: usize,
}

impl Clone for BitMatrix {
    fn clone(&self) -> Self {
        BitMatrix {
            rows: self.rows.clone(),
            n: self.n,
        }
    }

    /// Reuses the row buffers of `self` (allocation-free when shapes match),
    /// which matters for callers that rebuild a matrix every round.
    fn clone_from(&mut self, source: &Self) {
        self.rows.clone_from(&source.rows);
        self.n = source.n;
    }
}

impl BitMatrix {
    /// Creates an all-false `n × n` matrix.
    pub fn new(n: usize) -> Self {
        BitMatrix {
            rows: (0..n).map(|_| BitSet::new(n)).collect(),
            n,
        }
    }

    /// Side length of the matrix.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Clears every entry and changes the side length to `n`, reusing row
    /// buffers where capacities allow.
    pub fn reset(&mut self, n: usize) {
        let keep = self.rows.len().min(n);
        for row in self.rows.iter_mut().take(keep) {
            row.reset(n);
        }
        if self.rows.len() > n {
            self.rows.truncate(n);
        } else {
            self.rows.resize_with(n, || BitSet::new(n));
        }
        self.n = n;
    }

    /// Sets entry `(i, j)` to true. Returns `true` if it was newly set.
    ///
    /// # Panics
    /// Panics if `i` or `j` is out of range.
    pub fn set(&mut self, i: usize, j: usize) -> bool {
        assert!(j < self.n, "column {j} out of range {}", self.n);
        self.rows[i].insert(j)
    }

    /// Clears entry `(i, j)`. Returns `true` if it was previously set.
    pub fn unset(&mut self, i: usize, j: usize) -> bool {
        self.rows[i].remove(j)
    }

    /// Reads entry `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> bool {
        i < self.n && self.rows[i].contains(j)
    }

    /// Borrows row `i` as a bit set.
    pub fn row(&self, i: usize) -> &BitSet {
        &self.rows[i]
    }

    /// Mutably borrows row `i`, for whole-row writes (e.g. incremental
    /// closure maintenance). Callers must keep the row's capacity at `n`.
    pub fn row_mut(&mut self, i: usize) -> &mut BitSet {
        &mut self.rows[i]
    }

    /// Unions row `src` into row `dst`; returns `true` if `dst` changed.
    ///
    /// # Panics
    /// Panics if `dst == src` (aliasing) or either is out of range.
    pub fn union_rows(&mut self, dst: usize, src: usize) -> bool {
        assert_ne!(dst, src, "cannot union a row into itself");
        let (a, b) = if dst < src {
            let (lo, hi) = self.rows.split_at_mut(src);
            (&mut lo[dst], &hi[0])
        } else {
            let (lo, hi) = self.rows.split_at_mut(dst);
            (&mut hi[0], &lo[src])
        };
        a.union_with(b)
    }

    /// Number of true entries.
    pub fn count(&self) -> usize {
        self.rows.iter().map(BitSet::count).sum()
    }

    /// Iterates the strictly-upper-triangle true entries as `(i, j)` pairs
    /// with `i < j`, in ascending order — the edge list of a symmetric
    /// matrix viewed as an undirected graph.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |i| {
            self.rows[i]
                .iter()
                .filter(move |&j| j > i)
                .map(move |j| (i, j))
        })
    }

    /// Returns the transpose.
    pub fn transposed(&self) -> BitMatrix {
        let mut t = BitMatrix::new(self.n);
        for i in 0..self.n {
            for j in self.rows[i].iter() {
                t.set(j, i);
            }
        }
        t
    }

    /// Returns the symmetric closure (`m[i][j] || m[j][i]`).
    pub fn symmetric(&self) -> BitMatrix {
        let mut s = self.clone();
        for i in 0..self.n {
            for j in self.rows[i].iter() {
                s.set(j, i);
            }
        }
        s
    }

    /// Returns the off-diagonal complement: true wherever `self` is false and
    /// `i != j`.
    pub fn complement(&self) -> BitMatrix {
        let mut c = BitMatrix::new(self.n);
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j && !self.get(i, j) {
                    c.set(i, j);
                }
            }
        }
        c
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix({}x{})", self.n, self.n)?;
        for i in 0..self.n {
            for j in 0..self.n {
                write!(f, "{}", if self.get(i, j) { '1' } else { '.' })?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_unset() {
        let mut m = BitMatrix::new(5);
        assert!(m.set(1, 3));
        assert!(!m.set(1, 3));
        assert!(m.get(1, 3));
        assert!(!m.get(3, 1));
        assert!(m.unset(1, 3));
        assert!(!m.get(1, 3));
        assert_eq!(m.count(), 0);
    }

    #[test]
    fn transpose_and_symmetric() {
        let mut m = BitMatrix::new(3);
        m.set(0, 1);
        m.set(1, 2);
        let t = m.transposed();
        assert!(t.get(1, 0) && t.get(2, 1));
        assert!(!t.get(0, 1));
        let s = m.symmetric();
        assert!(s.get(0, 1) && s.get(1, 0) && s.get(1, 2) && s.get(2, 1));
    }

    #[test]
    fn complement_excludes_diagonal() {
        let mut m = BitMatrix::new(3);
        m.set(0, 1);
        let c = m.complement();
        assert!(!c.get(0, 1));
        assert!(c.get(1, 0));
        assert!(c.get(0, 2) && c.get(2, 0) && c.get(1, 2) && c.get(2, 1));
        for i in 0..3 {
            assert!(!c.get(i, i));
        }
    }

    #[test]
    fn union_rows_propagates() {
        let mut m = BitMatrix::new(4);
        m.set(2, 3);
        assert!(m.union_rows(0, 2));
        assert!(m.get(0, 3));
        assert!(!m.union_rows(0, 2));
    }
}
