//! Dominator analysis (Cooper–Harvey–Kennedy iterative algorithm).
//!
//! Pinter's inter-block extension schedules two blocks together when they are
//! *plausible*: one dominates the other and the second post-dominates the
//! first. Post-dominators are computed by running the same analysis on the
//! reversed flow graph.

use crate::digraph::DiGraph;
use crate::NodeId;

/// Immediate-dominator table for a rooted flow graph.
///
/// Nodes unreachable from the root have no dominator entry.
#[derive(Debug, Clone)]
pub struct Dominators {
    root: NodeId,
    idom: Vec<Option<NodeId>>,
}

impl Dominators {
    /// Computes dominators of `g` from `root` using the iterative algorithm
    /// of Cooper, Harvey and Kennedy ("A Simple, Fast Dominance Algorithm").
    ///
    /// # Panics
    /// Panics if `root` is out of range.
    pub fn compute(g: &DiGraph, root: NodeId) -> Self {
        let n = g.node_count();
        assert!(root < n, "root {root} out of range {n}");
        // Reverse postorder of reachable nodes.
        let rpo = reverse_postorder(g, root);
        let mut rpo_index = vec![usize::MAX; n];
        for (i, &v) in rpo.iter().enumerate() {
            rpo_index[v] = i;
        }
        let mut idom: Vec<Option<NodeId>> = vec![None; n];
        idom[root] = Some(root);
        let mut changed = true;
        while changed {
            changed = false;
            for &v in rpo.iter().skip(1) {
                let mut new_idom: Option<NodeId> = None;
                for &p in g.preds(v) {
                    if idom[p].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[v] != Some(ni) {
                        idom[v] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        Dominators { root, idom }
    }

    /// The root (entry) node of the analysis.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Immediate dominator of `v`, or `None` for the root and for
    /// unreachable nodes.
    pub fn idom(&self, v: NodeId) -> Option<NodeId> {
        if v == self.root {
            None
        } else {
            self.idom[v]
        }
    }

    /// Whether `v` is reachable from the root.
    pub fn is_reachable(&self, v: NodeId) -> bool {
        self.idom[v].is_some()
    }

    /// Whether `a` dominates `b` (reflexive: every node dominates itself).
    ///
    /// Returns `false` if either node is unreachable.
    pub fn dominates(&self, a: NodeId, b: NodeId) -> bool {
        if !self.is_reachable(a) || !self.is_reachable(b) {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.root {
                return false;
            }
            cur = self.idom[cur].expect("reachable node has idom");
        }
    }

    /// Builds the dominator tree as parent→children adjacency.
    pub fn tree(&self) -> DominatorTree {
        let n = self.idom.len();
        let mut children = vec![Vec::new(); n];
        for v in 0..n {
            if v != self.root {
                if let Some(d) = self.idom[v] {
                    children[d].push(v);
                }
            }
        }
        DominatorTree {
            root: self.root,
            children,
        }
    }
}

/// Explicit dominator tree: each node's children are the nodes it
/// immediately dominates.
#[derive(Debug, Clone)]
pub struct DominatorTree {
    root: NodeId,
    children: Vec<Vec<NodeId>>,
}

impl DominatorTree {
    /// The tree root.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Children of `v` in the dominator tree.
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v]
    }
}

fn intersect(idom: &[Option<NodeId>], rpo_index: &[usize], mut a: NodeId, mut b: NodeId) -> NodeId {
    while a != b {
        while rpo_index[a] > rpo_index[b] {
            a = idom[a].expect("finger has idom");
        }
        while rpo_index[b] > rpo_index[a] {
            b = idom[b].expect("finger has idom");
        }
    }
    a
}

fn reverse_postorder(g: &DiGraph, root: NodeId) -> Vec<NodeId> {
    let n = g.node_count();
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    // Iterative DFS with explicit successor cursors.
    let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
    visited[root] = true;
    while let Some(&mut (v, ref mut si)) = stack.last_mut() {
        if let Some(&w) = g.succs(v).get(*si) {
            *si += 1;
            if !visited[w] {
                visited[w] = true;
                stack.push((w, 0));
            }
        } else {
            post.push(v);
            stack.pop();
        }
    }
    post.reverse();
    post
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic diamond: 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3.
    fn diamond() -> DiGraph {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g
    }

    #[test]
    fn diamond_dominators() {
        let dom = Dominators::compute(&diamond(), 0);
        assert_eq!(dom.idom(1), Some(0));
        assert_eq!(dom.idom(2), Some(0));
        assert_eq!(dom.idom(3), Some(0));
        assert!(dom.dominates(0, 3));
        assert!(!dom.dominates(1, 3));
        assert!(dom.dominates(3, 3));
    }

    #[test]
    fn diamond_postdominators_via_reversal() {
        // Reverse the diamond and root at the exit.
        let g = diamond();
        let mut rev = DiGraph::new(4);
        for (u, v) in g.edges() {
            rev.add_edge(v, u);
        }
        let pdom = Dominators::compute(&rev, 3);
        // 3 post-dominates everything; 1 and 2 post-dominate nothing else.
        assert!(pdom.dominates(3, 0));
        assert!(!pdom.dominates(1, 0));
        assert_eq!(pdom.idom(0), Some(3));
    }

    #[test]
    fn chain_dominators() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let dom = Dominators::compute(&g, 0);
        assert_eq!(dom.idom(2), Some(1));
        assert!(dom.dominates(0, 2));
        let tree = dom.tree();
        assert_eq!(tree.children(0), &[1]);
        assert_eq!(tree.children(1), &[2]);
        assert_eq!(tree.root(), 0);
    }

    #[test]
    fn unreachable_nodes() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        let dom = Dominators::compute(&g, 0);
        assert!(!dom.is_reachable(2));
        assert!(!dom.dominates(0, 2));
        assert!(!dom.dominates(2, 0));
        assert_eq!(dom.idom(2), None);
    }

    #[test]
    fn loop_back_edge() {
        // 0 -> 1 -> 2 -> 1, 2 -> 3
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 1);
        g.add_edge(2, 3);
        let dom = Dominators::compute(&g, 0);
        assert_eq!(dom.idom(1), Some(0));
        assert_eq!(dom.idom(2), Some(1));
        assert_eq!(dom.idom(3), Some(2));
    }
}
