//! Strongly connected components (iterative Tarjan).

use crate::digraph::DiGraph;
use crate::NodeId;

/// Computes the strongly connected components of `g`.
///
/// Returns the components in *reverse topological* order of the condensation
/// (Tarjan's natural output order): if component `A` has an edge into
/// component `B`, then `B` appears before `A`. Each component lists its
/// member nodes.
///
/// The implementation is an explicit-stack Tarjan so deep dependence chains
/// (thousands of instructions) cannot overflow the call stack.
pub fn strongly_connected_components(g: &DiGraph) -> Vec<Vec<NodeId>> {
    let n = g.node_count();
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0usize;
    let mut components = Vec::new();

    // Work items: (node, next-successor-position).
    let mut work: Vec<(NodeId, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        work.push((root, 0));
        while let Some(&mut (v, ref mut si)) = work.last_mut() {
            if *si == 0 {
                index[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = g.succs(v).get(*si) {
                *si += 1;
                if index[w] == UNVISITED {
                    work.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    components.push(comp);
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_components_for_dag() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 3);
        // Reverse topological: sink first.
        assert_eq!(sccs[0], vec![2]);
        assert_eq!(sccs[2], vec![0]);
    }

    #[test]
    fn finds_cycle_component() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 1);
        g.add_edge(2, 3);
        let sccs = strongly_connected_components(&g);
        assert!(sccs.contains(&vec![1, 2]));
        assert_eq!(sccs.len(), 3);
    }

    #[test]
    fn whole_graph_cycle() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn deep_chain_no_overflow() {
        let n = 100_000;
        let mut g = DiGraph::new(n);
        for i in 1..n {
            g.add_edge(i - 1, i);
        }
        assert_eq!(strongly_connected_components(&g).len(), n);
    }
}
