//! Graphviz DOT export.
//!
//! The PIG and dependence graphs are best understood visually; these
//! helpers render any graph in this crate to DOT for `dot -Tsvg`.

use crate::digraph::DiGraph;
use crate::ungraph::UnGraph;
use std::fmt::Write as _;

/// Options for DOT rendering.
#[derive(Debug, Clone, Default)]
pub struct DotOptions {
    /// Graph title (rendered as a label).
    pub title: String,
    /// Node labels; nodes without an entry use their index.
    pub node_labels: Vec<String>,
    /// Per-edge style annotations `(u, v, style)` — e.g. `"dashed"` for
    /// false-dependence edges. Directions are ignored for undirected
    /// graphs.
    pub edge_styles: Vec<(usize, usize, String)>,
}

impl DotOptions {
    /// Options with a title only.
    pub fn titled(title: impl Into<String>) -> DotOptions {
        DotOptions {
            title: title.into(),
            ..DotOptions::default()
        }
    }

    fn label(&self, v: usize) -> String {
        self.node_labels
            .get(v)
            .cloned()
            .unwrap_or_else(|| v.to_string())
    }

    fn style(&self, u: usize, v: usize) -> Option<&str> {
        self.edge_styles
            .iter()
            .find(|&&(a, b, _)| (a, b) == (u, v) || (a, b) == (v, u))
            .map(|(_, _, s)| s.as_str())
    }
}

/// Renders an undirected graph as DOT.
pub fn ungraph_to_dot(g: &UnGraph, opts: &DotOptions) -> String {
    let mut out = String::from("graph {\n");
    if !opts.title.is_empty() {
        let _ = writeln!(out, "  label=\"{}\";", escape(&opts.title));
    }
    for v in 0..g.node_count() {
        let _ = writeln!(out, "  n{v} [label=\"{}\"];", escape(&opts.label(v)));
    }
    for (u, v) in g.edges() {
        match opts.style(u, v) {
            Some(style) => {
                let _ = writeln!(out, "  n{u} -- n{v} [style={style}];");
            }
            None => {
                let _ = writeln!(out, "  n{u} -- n{v};");
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Renders a directed graph as DOT.
pub fn digraph_to_dot(g: &DiGraph, opts: &DotOptions) -> String {
    let mut out = String::from("digraph {\n");
    if !opts.title.is_empty() {
        let _ = writeln!(out, "  label=\"{}\";", escape(&opts.title));
    }
    for v in 0..g.node_count() {
        let _ = writeln!(out, "  n{v} [label=\"{}\"];", escape(&opts.label(v)));
    }
    for (u, v) in g.edges() {
        match opts.style(u, v) {
            Some(style) => {
                let _ = writeln!(out, "  n{u} -> n{v} [style={style}];");
            }
            None => {
                let _ = writeln!(out, "  n{u} -> n{v};");
            }
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_undirected() {
        let mut g = UnGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let mut opts = DotOptions::titled("Gr");
        opts.node_labels = vec!["s1".into(), "s2".into(), "s3".into()];
        opts.edge_styles = vec![(1, 0, "dashed".into())];
        let dot = ungraph_to_dot(&g, &opts);
        assert!(dot.starts_with("graph {"));
        assert!(dot.contains("label=\"Gr\""));
        assert!(dot.contains("n0 [label=\"s1\"]"));
        assert!(dot.contains("n0 -- n1 [style=dashed];"));
        assert!(dot.contains("n1 -- n2;"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn renders_directed_with_default_labels() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1);
        let dot = digraph_to_dot(&g, &DotOptions::default());
        assert!(dot.starts_with("digraph {"));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.contains("[label=\"0\"]"));
        assert!(!dot.contains("label=\"\";"), "no empty title line");
    }

    #[test]
    fn escapes_quotes() {
        let g = UnGraph::new(1);
        let opts = DotOptions {
            node_labels: vec!["a\"b".into()],
            ..Default::default()
        };
        let dot = ungraph_to_dot(&g, &opts);
        assert!(dot.contains("a\\\"b"));
    }
}
