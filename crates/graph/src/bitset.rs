//! A fixed-capacity bit set over dense indices.

use std::fmt;

/// A fixed-capacity set of `usize` indices backed by a `Vec<u64>`.
///
/// Used throughout the crate for liveness-style dataflow sets, adjacency
/// rows, and reachability vectors. Capacity is fixed at construction; all
/// operations panic if an index is out of range (callers always know `n`).
#[derive(PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl Default for BitSet {
    /// An empty set of capacity 0 (grow it with [`BitSet::reset`]).
    fn default() -> Self {
        BitSet::new(0)
    }
}

impl Clone for BitSet {
    fn clone(&self) -> Self {
        BitSet {
            words: self.words.clone(),
            len: self.len,
        }
    }

    /// Reuses the existing word buffer, so cloning into a set of the same
    /// (or larger) capacity performs no allocation.
    fn clone_from(&mut self, source: &Self) {
        self.words.clone_from(&source.words);
        self.len = source.len;
    }
}

impl BitSet {
    /// Creates an empty set with capacity for indices `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of indices this set can hold (`0..capacity()`).
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Empties the set and changes its capacity to `len`, reusing the word
    /// buffer when it is large enough.
    pub fn reset(&mut self, len: usize) {
        self.words.clear();
        self.words.resize(len.div_ceil(64), 0);
        self.len = len;
    }

    /// Inserts `i`, returning `true` if it was newly inserted.
    ///
    /// # Panics
    /// Panics if `i >= capacity()`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let (w, b) = (i / 64, i % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// Removes `i`, returning `true` if it was present.
    ///
    /// # Panics
    /// Panics if `i >= capacity()`.
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let (w, b) = (i / 64, i % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        was
    }

    /// Tests membership of `i`.
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Inserts every index in `0..capacity()`.
    pub fn fill(&mut self) {
        self.words.fill(!0);
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of elements present.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Unions `other` into `self`; returns `true` if `self` changed.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | *b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Intersects `self` with `other`; returns `true` if `self` changed.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a & *b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Removes every element of `other` from `self`; returns `true` on change.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn difference_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a & !*b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Number of elements in `self ∩ other`, without materializing the
    /// intersection.
    ///
    /// # Panics
    /// Panics if the capacities differ.
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Whether `self` and `other` share no element.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Whether every element of `self` is in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over the indices present, in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Iterator over the members of a [`BitSet`], ascending.
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set sized to hold the largest element.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |m| m + 1);
        let mut set = BitSet::new(cap);
        for i in items {
            set.insert(i);
        }
        set
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.count(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn contains_out_of_range_is_false() {
        let s = BitSet::new(10);
        assert!(!s.contains(1000));
    }

    #[test]
    fn fill_sets_exactly_the_capacity() {
        for n in [0, 1, 63, 64, 65, 130] {
            let mut s = BitSet::new(n);
            s.fill();
            assert_eq!(s.count(), n, "fill() at capacity {n}");
            assert_eq!(s.iter().collect::<Vec<_>>(), (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn union_intersect_difference() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        for i in [1, 5, 70] {
            a.insert(i);
        }
        for i in [5, 70, 99] {
            b.insert(i);
        }
        let mut u = a.clone();
        assert!(u.union_with(&b));
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 5, 70, 99]);
        assert!(!u.union_with(&b));

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![5, 70]);

        a.difference_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn subset_disjoint() {
        let a: BitSet = [1, 2].into_iter().collect();
        let mut b = BitSet::new(3);
        b.insert(1);
        b.insert(2);
        assert!(b.is_subset(&a));
        let c: BitSet = [0].into_iter().collect();
        let mut c2 = BitSet::new(3);
        c2.insert(0);
        assert!(c2.is_disjoint(&b));
        assert_eq!(c.count(), 1);
    }

    #[test]
    fn iter_empty_and_debug() {
        let s = BitSet::new(0);
        assert_eq!(s.iter().count(), 0);
        assert!(s.is_empty());
        let s: BitSet = [3].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{3}");
    }
}
