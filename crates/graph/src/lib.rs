//! Graph substrate for `parsched`.
//!
//! This crate provides the graph machinery that Pinter's PLDI 1993 framework
//! is built from: directed graphs for schedule/dependence graphs, undirected
//! graphs for interference and false-dependence graphs, dense bit-matrix
//! adjacency for transitive closure and complement, and a family of
//! graph-coloring algorithms (greedy, DSATUR, Chaitin-style simplify, and an
//! exact branch-and-bound used to validate the paper's optimality theorems on
//! small blocks).
//!
//! All graphs are over dense node indices `0..n` ([`NodeId`] is a plain
//! `usize`); callers keep their own side tables mapping ids to instructions
//! or live ranges.
//!
//! # Examples
//!
//! ```
//! use parsched_graph::{DiGraph, UnGraph};
//!
//! // A tiny dependence DAG: 0 -> 1 -> 2 and 0 -> 2.
//! let mut g = DiGraph::new(3);
//! g.add_edge(0, 1);
//! g.add_edge(1, 2);
//! g.add_edge(0, 2);
//! let closure = g.transitive_closure();
//! assert!(closure.has_edge(0, 2));
//!
//! // The undirected complement holds the pairs *not* ordered by the DAG.
//! let undirected: UnGraph = closure.to_undirected();
//! let comp = undirected.complement();
//! assert_eq!(comp.edge_count(), 0); // the chain orders every pair
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitmatrix;
mod bitset;
pub mod coloring;
mod digraph;
mod dominators;
pub mod dot;
pub mod hash;
mod reachability;
mod scc;
mod topo;
mod ungraph;

pub use bitmatrix::BitMatrix;
pub use bitset::BitSet;
pub use coloring::{Coloring, ColoringError};
pub use digraph::{DiGraph, DEADLINE_STRIDE};
pub use dominators::{DominatorTree, Dominators};
pub use hash::{FastMap, FastSet};
pub use reachability::{ClosureMode, ClosureModeParseError, Reachability, Rebuilt};
pub use scc::strongly_connected_components;
pub use topo::{topological_sort, CycleError};
pub use ungraph::UnGraph;

/// Dense node identifier: graphs in this crate are always over `0..n`.
pub type NodeId = usize;
