//! A fast, deterministic hasher for hot compiler-internal maps.
//!
//! `std`'s default `SipHash` is DoS-resistant but costs real time in the
//! dependence-graph pair scan, which hashes one key per discovered edge.
//! Compiler-internal keys (dense indices, register ids) are not
//! attacker-controlled, so a multiply–xor hash is safe here and several
//! times cheaper. The hasher is also *seed-free*: identical runs hash
//! identically, which keeps any accidental order dependence reproducible.
//!
//! Callers must not rely on map iteration order (true for any `HashMap`);
//! use these aliases only where every access is a point lookup.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const K: u64 = 0x517c_c1b7_2722_0a95;

/// Multiply–xor hasher (FxHash-style folding).
#[derive(Default)]
pub struct FastHasher(u64);

impl FastHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            let mut w = [0u8; 8];
            w.copy_from_slice(c);
            self.fold(u64::from_le_bytes(w));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut w = [0u8; 8];
            w[..rem.len()].copy_from_slice(rem);
            self.fold(u64::from_le_bytes(w));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.fold(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.fold(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.fold(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.fold(i as u64);
    }
}

/// `HashMap` keyed by the seed-free [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` keyed by the seed-free [`FastHasher`].
pub type FastSet<T> = HashSet<T, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FastMap<(usize, usize), u32> = FastMap::default();
        for i in 0..1000usize {
            m.insert((i, i + 1), i as u32);
        }
        for i in 0..1000usize {
            assert_eq!(m.get(&(i, i + 1)), Some(&(i as u32)));
            assert_eq!(m.get(&(i + 1, i)), None);
        }
    }

    #[test]
    fn hashing_is_deterministic_across_instances() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let b1: BuildHasherDefault<FastHasher> = Default::default();
        let b2: BuildHasherDefault<FastHasher> = Default::default();
        for key in [(0usize, 0usize), (17, 4), (usize::MAX, 3)] {
            assert_eq!(b1.hash_one(key), b2.hash_one(key));
        }
    }

    #[test]
    fn byte_writes_match_padding_behavior() {
        // Unequal-length prefixes must not collide trivially.
        let mut a = FastHasher::default();
        a.write(b"abcdefgh");
        let mut b = FastHasher::default();
        b.write(b"abcdefg");
        assert_ne!(a.finish(), b.finish());
    }
}
