//! Undirected graphs over dense node ids.

use crate::bitmatrix::BitMatrix;
use crate::bitset::BitSet;
use crate::NodeId;
use std::fmt;

/// An undirected simple graph over nodes `0..n`.
///
/// This is the representation for interference graphs `Gr`, false-dependence
/// graphs `Gf`, and the parallelizable interference graph `G = Gr ∪ Gf`.
/// Self-loops are rejected; parallel edges collapse.
pub struct UnGraph {
    adj: BitMatrix,
    neighbors: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl Clone for UnGraph {
    fn clone(&self) -> Self {
        UnGraph {
            adj: self.adj.clone(),
            neighbors: self.neighbors.clone(),
            edge_count: self.edge_count,
        }
    }

    /// Reuses adjacency rows and neighbor lists (allocation-free once the
    /// buffers have grown to size), preserving `source`'s neighbor order.
    fn clone_from(&mut self, source: &Self) {
        self.adj.clone_from(&source.adj);
        self.neighbors.clone_from(&source.neighbors);
        self.edge_count = source.edge_count;
    }
}

impl UnGraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        UnGraph {
            adj: BitMatrix::new(n),
            neighbors: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.neighbors.len()
    }

    /// Removes every edge and changes the node count to `n`, reusing the
    /// adjacency and neighbor-list buffers — the cheap way to rebuild a
    /// graph of similar size every round.
    pub fn reset(&mut self, n: usize) {
        self.adj.reset(n);
        for vs in self.neighbors.iter_mut().take(n) {
            vs.clear();
        }
        if self.neighbors.len() > n {
            self.neighbors.truncate(n);
        } else {
            self.neighbors.resize_with(n, Vec::new);
        }
        self.edge_count = 0;
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Adds the edge `{u, v}`; returns `true` if it was not already present.
    ///
    /// # Panics
    /// Panics if `u == v` (self-loop) or either endpoint is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        assert_ne!(u, v, "self-loop {u} in undirected graph");
        if self.adj.set(u, v) {
            self.adj.set(v, u);
            self.neighbors[u].push(v);
            self.neighbors[v].push(u);
            self.edge_count += 1;
            true
        } else {
            false
        }
    }

    /// Removes the edge `{u, v}`; returns `true` if it was present.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if self.adj.unset(u, v) {
            self.adj.unset(v, u);
            self.neighbors[u].retain(|&x| x != v);
            self.neighbors[v].retain(|&x| x != u);
            self.edge_count -= 1;
            true
        } else {
            false
        }
    }

    /// Whether the edge `{u, v}` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adj.get(u, v)
    }

    /// Neighbors of `u`.
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.neighbors[u]
    }

    /// Degree of `u`.
    pub fn degree(&self, u: NodeId) -> usize {
        self.neighbors[u].len()
    }

    /// Borrows the adjacency row of `u` as a bit set (one bit per neighbor).
    pub fn row(&self, u: NodeId) -> &BitSet {
        self.adj.row(u)
    }

    /// Iterates over edges as `(u, v)` pairs with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.neighbors
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().filter(move |&&v| u < v).map(move |&v| (u, v)))
    }

    /// Returns the union of `self` and `other` (same node count required).
    ///
    /// # Panics
    /// Panics if node counts differ.
    pub fn union(&self, other: &UnGraph) -> UnGraph {
        assert_eq!(
            self.node_count(),
            other.node_count(),
            "graph union requires equal node counts"
        );
        let mut g = self.clone();
        for (u, v) in other.edges() {
            g.add_edge(u, v);
        }
        g
    }

    /// Returns the complement graph: `{u, v}` present iff absent in `self`.
    pub fn complement(&self) -> UnGraph {
        let n = self.node_count();
        let mut g = UnGraph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if !self.has_edge(u, v) {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// Returns the subgraph induced by `keep`, together with the mapping from
    /// new ids to original ids.
    pub fn induced_subgraph(&self, keep: &BitSet) -> (UnGraph, Vec<NodeId>) {
        let old_ids: Vec<NodeId> = keep.iter().collect();
        let mut new_of_old = vec![usize::MAX; self.node_count()];
        for (new, &old) in old_ids.iter().enumerate() {
            new_of_old[old] = new;
        }
        let mut g = UnGraph::new(old_ids.len());
        for (u, v) in self.edges() {
            if keep.contains(u) && keep.contains(v) {
                g.add_edge(new_of_old[u], new_of_old[v]);
            }
        }
        (g, old_ids)
    }

    /// Checks whether `coloring[v]` assigns distinct values across every edge.
    ///
    /// `coloring` must have one entry per node.
    pub fn is_proper_coloring(&self, coloring: &[u32]) -> bool {
        coloring.len() == self.node_count() && self.edges().all(|(u, v)| coloring[u] != coloring[v])
    }
}

impl fmt::Debug for UnGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "UnGraph(n={}, edges={:?})",
            self.node_count(),
            self.edges().collect::<Vec<_>>()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_symmetry() {
        let mut g = UnGraph::new(4);
        assert!(g.add_edge(0, 2));
        assert!(!g.add_edge(2, 0));
        assert!(g.has_edge(0, 2) && g.has_edge(2, 0));
        assert_eq!(g.degree(0), 1);
        assert!(g.remove_edge(2, 0));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        UnGraph::new(2).add_edge(1, 1);
    }

    #[test]
    fn edges_are_canonical() {
        let mut g = UnGraph::new(3);
        g.add_edge(2, 0);
        g.add_edge(1, 2);
        let mut e: Vec<_> = g.edges().collect();
        e.sort();
        assert_eq!(e, vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn union_and_complement() {
        let mut a = UnGraph::new(3);
        a.add_edge(0, 1);
        let mut b = UnGraph::new(3);
        b.add_edge(1, 2);
        let u = a.union(&b);
        assert_eq!(u.edge_count(), 2);
        let c = u.complement();
        assert_eq!(c.edges().collect::<Vec<_>>(), vec![(0, 2)]);
        // complement of complement is the original
        let cc = c.complement();
        assert!(cc.has_edge(0, 1) && cc.has_edge(1, 2) && !cc.has_edge(0, 2));
    }

    #[test]
    fn induced_subgraph_remaps() {
        let mut g = UnGraph::new(5);
        g.add_edge(0, 4);
        g.add_edge(1, 4);
        g.add_edge(2, 3);
        let keep: crate::BitSet = [0, 2, 3, 4].into_iter().collect();
        let (sub, ids) = g.induced_subgraph(&keep);
        assert_eq!(ids, vec![0, 2, 3, 4]);
        assert_eq!(sub.node_count(), 4);
        assert!(sub.has_edge(0, 3)); // 0-4
        assert!(sub.has_edge(1, 2)); // 2-3
        assert_eq!(sub.edge_count(), 2);
    }

    #[test]
    fn proper_coloring_check() {
        let mut g = UnGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert!(g.is_proper_coloring(&[0, 1, 0]));
        assert!(!g.is_proper_coloring(&[0, 0, 1]));
        assert!(!g.is_proper_coloring(&[0, 1])); // wrong length
    }
}
