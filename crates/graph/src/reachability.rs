//! Query-oriented reachability over dependence DAGs.
//!
//! Pinter's construction needs the transitive closure of the schedule graph
//! `Gs` three ways: point queries (`does i reach j?`), row enumeration (all
//! `j` reachable from `i`, in either direction), and the *unordered* set
//! (all `j` with no path either way — the candidates for a false-dependence
//! edge). [`Reachability`] answers all three behind one interface, backed by
//! either of two representations:
//!
//! * **Dense** — a pair of [`BitMatrix`] closures (forward rows and reverse
//!   rows), the representation the reproduction has always used. Row
//!   operations run a word at a time; memory is `2·n²` bits.
//! * **Sparse** — a greedy chain decomposition (path cover) of the DAG.
//!   Every node gets a `(chain, index)` label; per node we keep one `u32`
//!   per chain holding the *minimum* index reachable forward (and, in count
//!   form, the *maximum* index reaching it). Because consecutive chain
//!   members are joined by real edges, reachability into a chain is a
//!   threshold: `reaches(i, j) ⇔ fwd[i][chain(j)] ≤ idx(j)`, an O(1) lookup
//!   after O(width) per-node storage. Row enumeration walks each chain's
//!   suffix (or prefix), so it is O(width + |row|).
//!
//! The backend is chosen by [`ClosureMode`]: `Dense`/`Sparse` force one,
//! `Auto` builds the chain cover first (O(V+E)) and keeps it only when the
//! cover is narrow relative to the node count. Cyclic graphs (possible for
//! hand-made graphs, never for block dependence DAGs) always fall back to
//! the dense fixpoint.
//!
//! Both backends support the cooperative wall-clock deadline protocol of
//! [`DiGraph::reachability_until`]: work is charged per label update (sparse)
//! or per row (dense) and the clock is polled every [`DEADLINE_STRIDE`]
//! units, so a deadline trips within a bounded slice of work.

use crate::bitmatrix::BitMatrix;
use crate::bitset::BitSet;
use crate::digraph::{DiGraph, DEADLINE_STRIDE};
use crate::NodeId;
use std::fmt;
use std::str::FromStr;
use std::time::Instant;

/// Sentinel for "no index in this chain is reachable".
const NO_LABEL: u32 = u32::MAX;

/// Minimum node count before the sparse backend is considered under
/// [`ClosureMode::Auto`]; below this the dense word-parallel rows win.
const SPARSE_MIN_NODES: usize = 64;

/// Under [`ClosureMode::Auto`] the sparse backend is kept only when the
/// chain cover is at least this many times narrower than the node count.
const SPARSE_WIDTH_RATIO: usize = 4;

/// Which reachability backend a session should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClosureMode {
    /// Decide per block: chain cover if it is narrow, dense otherwise.
    #[default]
    Auto,
    /// Always materialize the dense bit-matrix closure.
    Dense,
    /// Always use the chain-decomposition backend (DAGs only; cyclic
    /// graphs still fall back to dense).
    Sparse,
}

impl ClosureMode {
    /// Stable lowercase name, as accepted by [`ClosureMode::from_str`].
    pub fn as_str(self) -> &'static str {
        match self {
            ClosureMode::Auto => "auto",
            ClosureMode::Dense => "dense",
            ClosureMode::Sparse => "sparse",
        }
    }
}

impl fmt::Display for ClosureMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error from parsing a [`ClosureMode`] name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClosureModeParseError {
    /// The rejected input.
    pub input: String,
}

impl fmt::Display for ClosureModeParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown closure mode `{}` (expected auto, dense, or sparse)",
            self.input
        )
    }
}

impl std::error::Error for ClosureModeParseError {}

impl FromStr for ClosureMode {
    type Err = ClosureModeParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(ClosureMode::Auto),
            "dense" => Ok(ClosureMode::Dense),
            "sparse" => Ok(ClosureMode::Sparse),
            _ => Err(ClosureModeParseError { input: s.into() }),
        }
    }
}

/// How [`Reachability::rebuild`] serviced an update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rebuilt {
    /// State from the previous graph was reused; `recomputed` closure rows
    /// (dense) or label rows (sparse) were re-derived.
    Incremental {
        /// Number of per-node rows recomputed rather than reused.
        recomputed: u64,
    },
    /// Nothing could be reused; the engine rebuilt from scratch.
    Full,
}

/// Charges units of closure work and polls the wall clock every
/// [`DEADLINE_STRIDE`] units, mirroring [`DiGraph::reachability_until`].
struct DeadlinePoll {
    deadline: Option<Instant>,
    pending: usize,
}

impl DeadlinePoll {
    fn new(deadline: Option<Instant>) -> DeadlinePoll {
        DeadlinePoll {
            deadline,
            pending: 0,
        }
    }

    /// Charges `units` of work; returns `true` when the deadline has passed.
    fn charge(&mut self, units: usize) -> bool {
        let Some(d) = self.deadline else {
            return false;
        };
        self.pending += units;
        if self.pending >= DEADLINE_STRIDE {
            self.pending = 0;
            return Instant::now() >= d;
        }
        false
    }
}

/// Dense backend: forward and reverse closure bit-matrices, both maintained
/// incrementally across spill rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
struct DenseClosure {
    /// `fwd[i]` = nodes reachable from `i` by a non-empty path.
    fwd: BitMatrix,
    /// `bwd[i]` = nodes that reach `i` by a non-empty path.
    bwd: BitMatrix,
}

/// Sparse backend: greedy chain cover plus per-node per-chain threshold
/// labels. All vectors are retained (arena-style) across
/// [`ChainClosure::rebuild`] calls so spill rounds allocate nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ChainClosure {
    n: usize,
    /// Number of chains in use; `chains[width..]` are retained spares.
    width: usize,
    /// Chain membership, each a directed path of *real* edges.
    chains: Vec<Vec<NodeId>>,
    /// Chain id of each node.
    chain_of: Vec<u32>,
    /// Index of each node within its chain.
    idx_in: Vec<u32>,
    /// `fwd[i·width + c]` = minimum index in chain `c` reachable from `i`,
    /// or [`NO_LABEL`].
    fwd: Vec<u32>,
    /// `bwd[i·width + c]` = one past the maximum index in chain `c` that
    /// reaches `i` (0 = none). Count form keeps 0 a natural identity.
    bwd: Vec<u32>,
}

impl ChainClosure {
    fn empty() -> ChainClosure {
        ChainClosure {
            n: 0,
            width: 0,
            chains: Vec::new(),
            chain_of: Vec::new(),
            idx_in: Vec::new(),
            fwd: Vec::new(),
            bwd: Vec::new(),
        }
    }

    /// Greedy path cover in topological order: append a node to a
    /// predecessor's chain when that predecessor is currently a chain tail,
    /// else start a new chain. Consecutive chain members are therefore
    /// always joined by a real edge, which is what makes the labels
    /// thresholds.
    fn cover_into(&mut self, g: &DiGraph, order: &[NodeId]) {
        let n = g.node_count();
        self.n = n;
        self.width = 0;
        self.chain_of.clear();
        self.chain_of.resize(n, 0);
        self.idx_in.clear();
        self.idx_in.resize(n, 0);
        for &u in order {
            let mut placed = false;
            for &p in g.preds(u) {
                if p == u {
                    continue;
                }
                let c = self.chain_of[p] as usize;
                if self.idx_in[p] as usize + 1 == self.chains[c].len() {
                    self.chain_of[u] = c as u32;
                    self.idx_in[u] = self.chains[c].len() as u32;
                    self.chains[c].push(u);
                    placed = true;
                    break;
                }
            }
            if !placed {
                let c = self.width;
                if c == self.chains.len() {
                    self.chains.push(Vec::new());
                }
                self.chains[c].clear();
                self.chains[c].push(u);
                self.chain_of[u] = c as u32;
                self.idx_in[u] = 0;
                self.width += 1;
            }
        }
    }

    /// Recomputes the threshold labels for the current cover. Forward labels
    /// propagate in reverse topological order (min over successors), reverse
    /// labels in forward order (max over predecessors); each per-chain
    /// vector merge charges `width` units to the deadline poll.
    fn labels_into(&mut self, g: &DiGraph, order: &[NodeId], poll: &mut DeadlinePoll) -> bool {
        let n = self.n;
        let w = self.width;
        self.fwd.clear();
        self.fwd.resize(n * w, NO_LABEL);
        self.bwd.clear();
        self.bwd.resize(n * w, 0);
        for &u in order.iter().rev() {
            for &s in g.succs(u) {
                if s == u {
                    continue;
                }
                let cell = u * w + self.chain_of[s] as usize;
                self.fwd[cell] = self.fwd[cell].min(self.idx_in[s]);
                merge_labels(&mut self.fwd, u, s, w, true);
                if poll.charge(w + 1) {
                    return false;
                }
            }
        }
        for &u in order {
            for &p in g.preds(u) {
                if p == u {
                    continue;
                }
                let cell = u * w + self.chain_of[p] as usize;
                self.bwd[cell] = self.bwd[cell].max(self.idx_in[p] + 1);
                merge_labels(&mut self.bwd, u, p, w, false);
                if poll.charge(w + 1) {
                    return false;
                }
            }
        }
        true
    }

    /// Rebuilds cover and labels for `g`, reusing every allocation. Returns
    /// `false` if the deadline tripped (state is then unspecified).
    fn rebuild(&mut self, g: &DiGraph, order: &[NodeId], poll: &mut DeadlinePoll) -> bool {
        self.cover_into(g, order);
        self.labels_into(g, order, poll)
    }

    fn reaches(&self, i: NodeId, j: NodeId) -> bool {
        self.fwd[i * self.width + self.chain_of[j] as usize] <= self.idx_in[j]
    }

    /// Calls `f` for every node with no path to or from `i` (skipping `i`):
    /// per chain, the indices in the gap between the reverse count and the
    /// forward threshold.
    fn for_each_unordered(&self, i: NodeId, mut f: impl FnMut(NodeId)) {
        let base = i * self.width;
        for c in 0..self.width {
            let lo = self.bwd[base + c] as usize;
            let hi = (self.fwd[base + c] as usize).min(self.chains[c].len());
            for &v in &self.chains[c][lo..hi] {
                if v != i {
                    f(v);
                }
            }
        }
    }
}

/// Elementwise min (forward labels) or max (reverse counts) of row `src`
/// into row `dst` of a packed `n × w` label table.
fn merge_labels(labels: &mut [u32], dst: usize, src: usize, w: usize, take_min: bool) {
    if w == 0 || dst == src {
        return;
    }
    let (d, s) = (dst * w, src * w);
    let (dst_row, src_row) = if d < s {
        let (lo, hi) = labels.split_at_mut(s);
        (&mut lo[d..d + w], &hi[..w])
    } else {
        let (lo, hi) = labels.split_at_mut(d);
        (&mut hi[..w], &lo[s..s + w])
    };
    if take_min {
        for (a, &b) in dst_row.iter_mut().zip(src_row) {
            if b < *a {
                *a = b;
            }
        }
    } else {
        for (a, &b) in dst_row.iter_mut().zip(src_row) {
            if b > *a {
                *a = b;
            }
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Backend {
    Dense(DenseClosure),
    Sparse(ChainClosure),
}

/// Reachability relation of a directed graph behind a query interface.
///
/// Built by [`Reachability::build`] and updated across spill rewrites by
/// [`Reachability::rebuild`]; see the [module docs](self) for the two
/// backends. All queries treat reachability as *non-empty* paths: for a DAG
/// `reaches(i, i)` is always `false`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reachability {
    n: usize,
    backend: Backend,
}

impl Default for Reachability {
    fn default() -> Self {
        Reachability::new()
    }
}

impl Reachability {
    /// An empty relation over zero nodes (the state of a fresh session).
    pub fn new() -> Reachability {
        Reachability {
            n: 0,
            backend: Backend::Dense(DenseClosure {
                fwd: BitMatrix::new(0),
                bwd: BitMatrix::new(0),
            }),
        }
    }

    /// Computes the reachability relation of `g` using the backend selected
    /// by `mode` (see [`ClosureMode`]). Returns `None` when `deadline`
    /// passes mid-build.
    pub fn build(
        g: &DiGraph,
        mode: ClosureMode,
        deadline: Option<Instant>,
    ) -> Option<Reachability> {
        let n = g.node_count();
        let mut poll = DeadlinePoll::new(deadline);
        let order = match g.topological_sort() {
            Ok(o) => o,
            Err(_) => return Self::build_cyclic(g, deadline),
        };
        let backend = match mode {
            ClosureMode::Dense => Backend::Dense(dense_from_order(g, &order, &mut poll)?),
            ClosureMode::Sparse => {
                let mut cc = ChainClosure::empty();
                if !cc.rebuild(g, &order, &mut poll) {
                    return None;
                }
                Backend::Sparse(cc)
            }
            ClosureMode::Auto => {
                let mut cc = ChainClosure::empty();
                cc.cover_into(g, &order);
                if sparse_worthwhile(n, cc.width) {
                    if !cc.labels_into(g, &order, &mut poll) {
                        return None;
                    }
                    Backend::Sparse(cc)
                } else {
                    Backend::Dense(dense_from_order(g, &order, &mut poll)?)
                }
            }
        };
        Some(Reachability { n, backend })
    }

    /// Cyclic graphs get the dense fixpoint (chains require a DAG).
    fn build_cyclic(g: &DiGraph, deadline: Option<Instant>) -> Option<Reachability> {
        let fwd = g.reachability_until(deadline)?;
        let bwd = fwd.transposed();
        Some(Reachability {
            n: g.node_count(),
            backend: Backend::Dense(DenseClosure { fwd, bwd }),
        })
    }

    /// Updates the relation after a spill rewrite mapped the nodes of
    /// `prev_g` into `g` via `old_to_new` (old position → new position).
    ///
    /// The backend is sticky: a dense relation is maintained incrementally
    /// (rows whose neighbor sets survived the remap unchanged are reused
    /// verbatim, in both directions), a sparse relation recomputes its
    /// labels into retained arenas. If the stored state does not match
    /// `prev_g`, or `g` is cyclic, the engine rebuilds from scratch and
    /// reports [`Rebuilt::Full`].
    ///
    /// Returns `None` when `deadline` passes mid-rebuild; the relation is
    /// then unspecified and must be discarded.
    pub fn rebuild(
        &mut self,
        prev_g: &DiGraph,
        g: &DiGraph,
        old_to_new: &[usize],
        deadline: Option<Instant>,
    ) -> Option<Rebuilt> {
        let n = g.node_count();
        let usable = self.n == prev_g.node_count() && old_to_new.len() == prev_g.node_count();
        let order = match g.topological_sort() {
            Ok(o) if usable => o,
            _ => {
                let mode = match &self.backend {
                    Backend::Dense(_) => ClosureMode::Dense,
                    Backend::Sparse(_) => ClosureMode::Sparse,
                };
                *self = Self::build(g, mode, deadline)?;
                return Some(Rebuilt::Full);
            }
        };
        let mut poll = DeadlinePoll::new(deadline);
        match &mut self.backend {
            Backend::Dense(d) => {
                let recomputed = d.rebuild(prev_g, g, old_to_new, &order, &mut poll)?;
                self.n = n;
                Some(Rebuilt::Incremental { recomputed })
            }
            Backend::Sparse(cc) => {
                if !cc.rebuild(g, &order, &mut poll) {
                    return None;
                }
                self.n = n;
                Some(Rebuilt::Incremental {
                    recomputed: n as u64,
                })
            }
        }
    }

    /// Number of nodes in the relation.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the relation is over zero nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Which backend is active: `"dense"` or `"sparse"`.
    pub fn backend_label(&self) -> &'static str {
        match &self.backend {
            Backend::Dense(_) => "dense",
            Backend::Sparse(_) => "sparse",
        }
    }

    /// Number of chains in the sparse cover (0 for the dense backend).
    pub fn chain_count(&self) -> usize {
        match &self.backend {
            Backend::Dense(_) => 0,
            Backend::Sparse(cc) => cc.width,
        }
    }

    /// Whether there is a non-empty directed path from `i` to `j`.
    pub fn reaches(&self, i: NodeId, j: NodeId) -> bool {
        match &self.backend {
            Backend::Dense(d) => d.fwd.get(i, j),
            Backend::Sparse(cc) => cc.reaches(i, j),
        }
    }

    /// Iterates over every node reachable from `i` (excluding `i` on DAGs).
    ///
    /// Dense rows yield ascending node ids; sparse rows yield chain by
    /// chain. Callers needing a canonical order must not rely on it.
    pub fn row_iter(&self, i: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        match &self.backend {
            Backend::Dense(d) => Either::Left(d.fwd.row(i).iter()),
            Backend::Sparse(cc) => Either::Right(SparseRowIter::new(cc, i, true)),
        }
    }

    /// Iterates over every node that reaches `i` (the reverse row).
    ///
    /// Same ordering caveat as [`Reachability::row_iter`].
    pub fn rrow_iter(&self, i: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        match &self.backend {
            Backend::Dense(d) => Either::Left(d.bwd.row(i).iter()),
            Backend::Sparse(cc) => Either::Right(SparseRowIter::new(cc, i, false)),
        }
    }

    /// Calls `f` for every node `j ≠ i` with no path between `i` and `j` in
    /// either direction — the pairs Pinter's Ef graph connects.
    pub fn for_each_unreachable(&self, i: NodeId, mut f: impl FnMut(NodeId)) {
        match &self.backend {
            Backend::Dense(d) => {
                for j in 0..self.n {
                    if j != i && !d.fwd.get(i, j) && !d.bwd.get(i, j) {
                        f(j);
                    }
                }
            }
            Backend::Sparse(cc) => cc.for_each_unordered(i, f),
        }
    }

    /// Word-level variant of [`Reachability::for_each_unreachable`]: sets
    /// `out` to `universe ∩ {j : unordered with i, j ≠ i}`.
    ///
    /// # Panics
    /// Panics if `universe` or `out` does not have capacity `len()`.
    pub fn unordered_into(&self, i: NodeId, universe: &BitSet, out: &mut BitSet) {
        match &self.backend {
            Backend::Dense(d) => {
                out.clone_from(universe);
                out.difference_with(d.fwd.row(i));
                out.difference_with(d.bwd.row(i));
                out.remove(i);
            }
            Backend::Sparse(cc) => {
                assert_eq!(universe.capacity(), self.n, "bitset capacity mismatch");
                assert_eq!(out.capacity(), self.n, "bitset capacity mismatch");
                out.clear();
                cc.for_each_unordered(i, |j| {
                    if universe.contains(j) {
                        out.insert(j);
                    }
                });
            }
        }
    }

    /// Materializes the forward relation as a [`BitMatrix`] — a debugging
    /// and testing aid, not a fast path (O(n²) for the sparse backend).
    pub fn to_dense(&self) -> BitMatrix {
        match &self.backend {
            Backend::Dense(d) => d.fwd.clone(),
            Backend::Sparse(cc) => {
                let mut m = BitMatrix::new(self.n);
                for i in 0..self.n {
                    for j in SparseRowIter::new(cc, i, true) {
                        m.set(i, j);
                    }
                }
                m
            }
        }
    }
}

/// Auto heuristic: keep the chain cover only when it is narrow enough that
/// O(width) labels beat word-parallel dense rows.
fn sparse_worthwhile(n: usize, width: usize) -> bool {
    n >= SPARSE_MIN_NODES && width.saturating_mul(SPARSE_WIDTH_RATIO) <= n
}

/// Builds the dense forward/reverse closure pair along a topological order.
fn dense_from_order(
    g: &DiGraph,
    order: &[NodeId],
    poll: &mut DeadlinePoll,
) -> Option<DenseClosure> {
    let n = g.node_count();
    let mut fwd = BitMatrix::new(n);
    let mut bwd = BitMatrix::new(n);
    for (u, v) in g.edges() {
        fwd.set(u, v);
        bwd.set(v, u);
    }
    for &u in order.iter().rev() {
        if poll.charge(1) {
            return None;
        }
        for &s in g.succs(u) {
            if s != u {
                fwd.union_rows(u, s);
            }
        }
    }
    for &u in order {
        if poll.charge(1) {
            return None;
        }
        for &p in g.preds(u) {
            if p != u {
                bwd.union_rows(u, p);
            }
        }
    }
    Some(DenseClosure { fwd, bwd })
}

impl DenseClosure {
    /// Incremental dense rebuild, run symmetrically in both directions:
    /// forward rows over successors in reverse topological order, reverse
    /// rows over predecessors in forward order. Returns the total number of
    /// recomputed rows, or `None` on a deadline trip.
    fn rebuild(
        &mut self,
        prev_g: &DiGraph,
        g: &DiGraph,
        old_to_new: &[usize],
        order: &[NodeId],
        poll: &mut DeadlinePoll,
    ) -> Option<u64> {
        let n = g.node_count();
        let mut old_of = vec![usize::MAX; n];
        for (old, &newp) in old_to_new.iter().enumerate() {
            old_of[newp] = old;
        }
        let prev_fwd = std::mem::replace(&mut self.fwd, BitMatrix::new(n));
        let fwd_dirty = rebuild_dir(
            &prev_fwd,
            &mut self.fwd,
            prev_g,
            g,
            old_to_new,
            &old_of,
            order,
            true,
            poll,
        )?;
        let prev_bwd = std::mem::replace(&mut self.bwd, BitMatrix::new(n));
        let bwd_dirty = rebuild_dir(
            &prev_bwd,
            &mut self.bwd,
            prev_g,
            g,
            old_to_new,
            &old_of,
            order,
            false,
            poll,
        )?;
        Some(fwd_dirty + bwd_dirty)
    }
}

/// One direction of the incremental dense rebuild. A surviving node's row is
/// reused verbatim (remapped) when its neighbor set is unchanged under the
/// remap and no neighbor's row changed; every other row is recomputed from
/// its (already-processed) neighbors.
#[allow(clippy::too_many_arguments)]
fn rebuild_dir(
    prev: &BitMatrix,
    next: &mut BitMatrix,
    prev_g: &DiGraph,
    g: &DiGraph,
    old_to_new: &[usize],
    old_of: &[usize],
    order: &[NodeId],
    forward: bool,
    poll: &mut DeadlinePoll,
) -> Option<u64> {
    let n = g.node_count();
    fn neigh(graph: &DiGraph, u: usize, forward: bool) -> &[usize] {
        if forward {
            graph.succs(u)
        } else {
            graph.preds(u)
        }
    }
    let mut changed = BitSet::new(n);
    let mut scratch = BitSet::new(n);
    let mut dirty: u64 = 0;
    let process = |u: usize,
                   next: &mut BitMatrix,
                   changed: &mut BitSet,
                   scratch: &mut BitSet,
                   dirty: &mut u64| {
        let old_u = old_of[u];
        let clean = old_u != usize::MAX
            && !neigh(g, u, forward).iter().any(|&s| changed.contains(s))
            && neighbors_equal(
                neigh(prev_g, old_u, forward),
                old_to_new,
                neigh(g, u, forward),
            );
        if clean {
            remap_row_into(prev.row(old_u), old_to_new, scratch);
            next.row_mut(u).clone_from(scratch);
            return;
        }
        *dirty += 1;
        scratch.clear();
        for &s in neigh(g, u, forward) {
            if s != u {
                scratch.insert(s);
                scratch.union_with(next.row(s));
            }
        }
        let row_changed = old_u == usize::MAX || !row_matches(prev.row(old_u), old_to_new, scratch);
        if row_changed {
            changed.insert(u);
        }
        next.row_mut(u).clone_from(scratch);
    };
    if forward {
        for &u in order.iter().rev() {
            if poll.charge(1) {
                return None;
            }
            process(u, next, &mut changed, &mut scratch, &mut dirty);
        }
    } else {
        for &u in order {
            if poll.charge(1) {
                return None;
            }
            process(u, next, &mut changed, &mut scratch, &mut dirty);
        }
    }
    Some(dirty)
}

fn neighbors_equal(old_neigh: &[usize], old_to_new: &[usize], new_neigh: &[usize]) -> bool {
    if old_neigh.len() != new_neigh.len() {
        return false;
    }
    let mut a: Vec<usize> = old_neigh.iter().map(|&s| old_to_new[s]).collect();
    let mut b: Vec<usize> = new_neigh.to_vec();
    a.sort_unstable();
    b.sort_unstable();
    a == b
}

fn remap_row_into(old_row: &BitSet, old_to_new: &[usize], out: &mut BitSet) {
    out.clear();
    for v in old_row.iter() {
        out.insert(old_to_new[v]);
    }
}

fn row_matches(old_row: &BitSet, old_to_new: &[usize], new_row: &BitSet) -> bool {
    if old_row.count() != new_row.count() {
        return false;
    }
    old_row.iter().all(|v| new_row.contains(old_to_new[v]))
}

/// Iterator over one sparse row: per chain, the suffix at or past the
/// forward threshold (forward) or the prefix below the reverse count
/// (reverse).
struct SparseRowIter<'a> {
    cc: &'a ChainClosure,
    base: usize,
    chain: usize,
    pos: usize,
    end: usize,
    forward: bool,
}

impl<'a> SparseRowIter<'a> {
    fn new(cc: &'a ChainClosure, i: NodeId, forward: bool) -> SparseRowIter<'a> {
        let mut it = SparseRowIter {
            cc,
            base: i * cc.width,
            chain: 0,
            pos: 0,
            end: 0,
            forward,
        };
        it.seek();
        it
    }

    /// Positions on the next chain with a non-empty range.
    fn seek(&mut self) {
        while self.chain < self.cc.width {
            let (lo, hi) = if self.forward {
                let lab = self.cc.fwd[self.base + self.chain];
                if lab == NO_LABEL {
                    (1, 0)
                } else {
                    (lab as usize, self.cc.chains[self.chain].len())
                }
            } else {
                (0, self.cc.bwd[self.base + self.chain] as usize)
            };
            if lo < hi {
                self.pos = lo;
                self.end = hi;
                return;
            }
            self.chain += 1;
        }
    }
}

impl Iterator for SparseRowIter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.chain >= self.cc.width {
            return None;
        }
        let v = self.cc.chains[self.chain][self.pos];
        self.pos += 1;
        if self.pos >= self.end {
            self.chain += 1;
            self.seek();
        }
        Some(v)
    }
}

/// Two-armed iterator so `row_iter` can return `impl Iterator` over either
/// backend without boxing.
enum Either<L, R> {
    Left(L),
    Right(R),
}

impl<L, R> Iterator for Either<L, R>
where
    L: Iterator<Item = NodeId>,
    R: Iterator<Item = NodeId>,
{
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        match self {
            Either::Left(it) => it.next(),
            Either::Right(it) => it.next(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        // 0 -> {1, 2} -> 3
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g
    }

    fn both(g: &DiGraph) -> (Reachability, Reachability) {
        let d = match Reachability::build(g, ClosureMode::Dense, None) {
            Some(r) => r,
            None => unreachable!("no deadline"),
        };
        let s = match Reachability::build(g, ClosureMode::Sparse, None) {
            Some(r) => r,
            None => unreachable!("no deadline"),
        };
        (d, s)
    }

    fn assert_equivalent(g: &DiGraph) {
        let (d, s) = both(g);
        let n = g.node_count();
        let reference = g.reachability();
        for i in 0..n {
            for j in 0..n {
                assert_eq!(d.reaches(i, j), reference.get(i, j), "dense ({i},{j})");
                assert_eq!(s.reaches(i, j), reference.get(i, j), "sparse ({i},{j})");
            }
            let mut dr: Vec<usize> = d.row_iter(i).collect();
            let mut sr: Vec<usize> = s.row_iter(i).collect();
            dr.sort_unstable();
            sr.sort_unstable();
            assert_eq!(dr, sr, "row {i}");
            let mut drr: Vec<usize> = d.rrow_iter(i).collect();
            let mut srr: Vec<usize> = s.rrow_iter(i).collect();
            drr.sort_unstable();
            srr.sort_unstable();
            assert_eq!(drr, srr, "rrow {i}");
            let mut du = Vec::new();
            let mut su = Vec::new();
            d.for_each_unreachable(i, |j| du.push(j));
            s.for_each_unreachable(i, |j| su.push(j));
            du.sort_unstable();
            su.sort_unstable();
            assert_eq!(du, su, "unordered {i}");
        }
        assert_eq!(d.to_dense(), reference);
        assert_eq!(s.to_dense(), reference);
    }

    #[test]
    fn diamond_backends_agree() {
        assert_equivalent(&diamond());
    }

    #[test]
    fn width_one_chain() {
        // A pure chain covers with exactly one chain; everything is ordered.
        let mut g = DiGraph::new(6);
        for i in 1..6 {
            g.add_edge(i - 1, i);
        }
        let s = match Reachability::build(&g, ClosureMode::Sparse, None) {
            Some(r) => r,
            None => unreachable!("no deadline"),
        };
        assert_eq!(s.chain_count(), 1);
        assert_eq!(s.backend_label(), "sparse");
        for i in 0..6 {
            let mut unordered = Vec::new();
            s.for_each_unreachable(i, |j| unordered.push(j));
            assert!(unordered.is_empty(), "node {i} is totally ordered");
        }
        assert_equivalent(&g);
    }

    #[test]
    fn width_n_antichain() {
        // No edges: n singleton chains; every pair is unordered.
        let g = DiGraph::new(5);
        let s = match Reachability::build(&g, ClosureMode::Sparse, None) {
            Some(r) => r,
            None => unreachable!("no deadline"),
        };
        assert_eq!(s.chain_count(), 5);
        for i in 0..5 {
            assert_eq!(s.row_iter(i).count(), 0);
            assert_eq!(s.rrow_iter(i).count(), 0);
            let mut unordered = Vec::new();
            s.for_each_unreachable(i, |j| unordered.push(j));
            assert_eq!(unordered.len(), 4);
        }
        assert_equivalent(&g);
    }

    #[test]
    fn unordered_into_matches_for_each() {
        let g = diamond();
        let (d, s) = both(&g);
        let mut universe = BitSet::new(4);
        universe.fill();
        for r in [&d, &s] {
            let mut out = BitSet::new(4);
            r.unordered_into(1, &universe, &mut out);
            let got: Vec<usize> = out.iter().collect();
            assert_eq!(got, vec![2], "{}", r.backend_label());
        }
        // A restricted universe filters the result.
        let mut small = BitSet::new(4);
        small.insert(3);
        let mut out = BitSet::new(4);
        s.unordered_into(1, &small, &mut out);
        assert_eq!(out.count(), 0);
    }

    #[test]
    fn cyclic_falls_back_to_dense() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        let r = match Reachability::build(&g, ClosureMode::Sparse, None) {
            Some(r) => r,
            None => unreachable!("no deadline"),
        };
        assert_eq!(r.backend_label(), "dense");
        for i in 0..3 {
            for j in 0..3 {
                assert!(r.reaches(i, j));
            }
        }
    }

    #[test]
    fn auto_picks_dense_for_small_graphs() {
        let r = match Reachability::build(&diamond(), ClosureMode::Auto, None) {
            Some(r) => r,
            None => unreachable!("no deadline"),
        };
        assert_eq!(r.backend_label(), "dense");
    }

    #[test]
    fn auto_picks_sparse_for_long_chains() {
        let mut g = DiGraph::new(128);
        for i in 1..128 {
            g.add_edge(i - 1, i);
        }
        let r = match Reachability::build(&g, ClosureMode::Auto, None) {
            Some(r) => r,
            None => unreachable!("no deadline"),
        };
        assert_eq!(r.backend_label(), "sparse");
        assert_eq!(r.chain_count(), 1);
    }

    #[test]
    fn rebuild_matches_fresh_build() {
        // Simulate a spill rewrite of the diamond: insert nodes at new
        // positions 1 and 4 (old 0,1,2,3 → 0,2,3,5).
        let old = diamond();
        let mut new = DiGraph::new(6);
        new.add_edge(0, 1); // inserted store after 0
        new.add_edge(0, 2);
        new.add_edge(0, 3);
        new.add_edge(2, 5);
        new.add_edge(3, 4); // inserted reload
        new.add_edge(4, 5);
        let old_to_new = vec![0, 2, 3, 5];
        for mode in [ClosureMode::Dense, ClosureMode::Sparse] {
            let mut r = match Reachability::build(&old, mode, None) {
                Some(r) => r,
                None => unreachable!("no deadline"),
            };
            let outcome = r.rebuild(&old, &new, &old_to_new, None);
            assert!(matches!(outcome, Some(Rebuilt::Incremental { .. })));
            let fresh = match Reachability::build(&new, mode, None) {
                Some(f) => f,
                None => unreachable!("no deadline"),
            };
            assert_eq!(r.to_dense(), fresh.to_dense(), "{mode}");
            assert_eq!(r.to_dense(), new.reachability(), "{mode} vs oracle");
        }
    }

    #[test]
    fn rebuild_with_mismatched_state_is_full() {
        let old = diamond();
        let new = diamond();
        let mut r = match Reachability::build(&old, ClosureMode::Dense, None) {
            Some(r) => r,
            None => unreachable!("no deadline"),
        };
        // Wrong old_to_new length → full rebuild.
        let outcome = r.rebuild(&old, &new, &[0, 1], None);
        assert_eq!(outcome, Some(Rebuilt::Full));
        assert_eq!(r.to_dense(), new.reachability());
    }

    #[test]
    fn expired_deadline_trips_both_backends() {
        let mut g = DiGraph::new(1500);
        for i in 1..1500 {
            g.add_edge(i - 1, i);
        }
        let past = Instant::now() - std::time::Duration::from_millis(1);
        for mode in [ClosureMode::Dense, ClosureMode::Sparse] {
            assert!(
                Reachability::build(&g, mode, Some(past)).is_none(),
                "{mode}"
            );
        }
    }

    #[test]
    fn closure_mode_parses() {
        assert_eq!("auto".parse(), Ok(ClosureMode::Auto));
        assert_eq!("dense".parse(), Ok(ClosureMode::Dense));
        assert_eq!("sparse".parse(), Ok(ClosureMode::Sparse));
        assert!("eager".parse::<ClosureMode>().is_err());
        assert_eq!(ClosureMode::Sparse.to_string(), "sparse");
    }
}
