//! Directed graphs over dense node ids.

use crate::bitmatrix::BitMatrix;
use crate::topo::{topological_sort, CycleError};
use crate::ungraph::UnGraph;
use crate::NodeId;
use std::fmt;

/// How many closure rows are processed between wall-clock polls in
/// [`DiGraph::reachability_until`]. Chosen so the poll overhead is
/// invisible (one `Instant::now` per ~1k rows) while a deadline trip is
/// detected within a tiny slice of the whole build.
pub const DEADLINE_STRIDE: usize = 1024;

/// A directed graph over nodes `0..n`, stored as adjacency lists plus a
/// bit-matrix for O(1) edge queries.
///
/// This is the representation for schedule graphs `Gs` and dependence DAGs.
/// Parallel edges are collapsed; self-loops are permitted but the transitive
/// closure helpers assume a DAG (they fall back to iterative propagation for
/// cyclic graphs).
#[derive(Clone)]
pub struct DiGraph {
    succs: Vec<Vec<NodeId>>,
    preds: Vec<Vec<NodeId>>,
    adj: BitMatrix,
    edge_count: usize,
}

impl DiGraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        DiGraph {
            succs: vec![Vec::new(); n],
            preds: vec![Vec::new(); n],
            adj: BitMatrix::new(n),
            edge_count: 0,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.succs.len()
    }

    /// Number of (distinct) edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Adds the edge `u -> v`; returns `true` if it was not already present.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if self.adj.set(u, v) {
            self.succs[u].push(v);
            self.preds[v].push(u);
            self.edge_count += 1;
            true
        } else {
            false
        }
    }

    /// Removes the edge `u -> v`; returns `true` if it was present.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if self.adj.unset(u, v) {
            self.succs[u].retain(|&x| x != v);
            self.preds[v].retain(|&x| x != u);
            self.edge_count -= 1;
            true
        } else {
            false
        }
    }

    /// Whether the edge `u -> v` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adj.get(u, v)
    }

    /// Successors of `u`.
    pub fn succs(&self, u: NodeId) -> &[NodeId] {
        &self.succs[u]
    }

    /// Predecessors of `u`.
    pub fn preds(&self, u: NodeId) -> &[NodeId] {
        &self.preds[u]
    }

    /// Out-degree of `u`.
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.succs[u].len()
    }

    /// In-degree of `u`.
    pub fn in_degree(&self, u: NodeId) -> usize {
        self.preds[u].len()
    }

    /// Iterates over all edges `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.succs
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&v| (u, v)))
    }

    /// Topological order of the nodes.
    ///
    /// # Errors
    /// Returns [`CycleError`] if the graph has a directed cycle.
    pub fn topological_sort(&self) -> Result<Vec<NodeId>, CycleError> {
        topological_sort(self)
    }

    /// Computes the reachability relation as a bit matrix: entry `(u, v)` is
    /// set iff there is a non-empty directed path from `u` to `v`.
    ///
    /// Runs in O(V·E/64) for DAGs by propagating successor bit-rows in
    /// reverse topological order; for cyclic graphs it iterates to a fixed
    /// point.
    pub fn reachability(&self) -> BitMatrix {
        match self.reachability_until(None) {
            Some(m) => m,
            // Unreachable: without a deadline the computation always runs
            // to completion.
            None => BitMatrix::new(self.node_count()),
        }
    }

    /// [`DiGraph::reachability`] with a cooperative wall-clock deadline.
    ///
    /// The closure build is the most expensive single loop in the
    /// allocation pipeline; on a huge block it can run for longer than a
    /// caller's entire compile budget. This variant polls the clock every
    /// [`DEADLINE_STRIDE`] processed rows and returns `None` as soon as
    /// `deadline` is in the past, bounding deadline overshoot to one
    /// stride of row unions instead of the whole matrix.
    pub fn reachability_until(&self, deadline: Option<std::time::Instant>) -> Option<BitMatrix> {
        let n = self.node_count();
        let mut reach = BitMatrix::new(n);
        for (u, v) in self.edges() {
            reach.set(u, v);
        }
        let mut processed: usize = 0;
        let tripped = |processed: &mut usize| {
            *processed += 1;
            (*processed).is_multiple_of(DEADLINE_STRIDE)
                && deadline.is_some_and(|d| std::time::Instant::now() >= d)
        };
        match self.topological_sort() {
            Ok(order) => {
                for &u in order.iter().rev() {
                    if tripped(&mut processed) {
                        return None;
                    }
                    // clone needed: rows of `reach` for successors are read
                    // while `u`'s row is written.
                    let succ: Vec<NodeId> = self.succs[u].to_vec();
                    for v in succ {
                        if u != v {
                            reach.union_rows(u, v);
                        }
                    }
                }
            }
            Err(_) => {
                let mut changed = true;
                while changed {
                    changed = false;
                    for u in 0..n {
                        if tripped(&mut processed) {
                            return None;
                        }
                        let targets: Vec<NodeId> = reach.row(u).iter().collect();
                        for v in targets {
                            if u != v {
                                changed |= reach.union_rows(u, v);
                            }
                        }
                    }
                }
            }
        }
        Some(reach)
    }

    /// Computes the reachability (transitive-closure) relation as a new
    /// directed graph: edge `u -> v` iff there is a non-empty directed path.
    ///
    /// This materializes [`DiGraph::reachability`] into adjacency lists; use
    /// the bit-matrix form directly when only row queries are needed.
    pub fn transitive_closure(&self) -> DiGraph {
        let n = self.node_count();
        let reach = self.reachability();
        let mut g = DiGraph::new(n);
        for u in 0..n {
            for v in reach.row(u).iter() {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// Drops edge directions, returning an undirected graph (self-loops are
    /// discarded).
    pub fn to_undirected(&self) -> UnGraph {
        let mut g = UnGraph::new(self.node_count());
        for (u, v) in self.edges() {
            if u != v {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// Longest-path length (in edges) ending at each node, for a DAG.
    ///
    /// With unit edge weights this is the depth used for critical-path
    /// priorities; see `parsched-sched` for the latency-weighted variant.
    ///
    /// # Errors
    /// Returns [`CycleError`] if the graph has a directed cycle.
    pub fn longest_path_from_roots(&self) -> Result<Vec<usize>, CycleError> {
        let order = self.topological_sort()?;
        let mut depth = vec![0usize; self.node_count()];
        for &u in &order {
            for &v in self.succs(u) {
                depth[v] = depth[v].max(depth[u] + 1);
            }
        }
        Ok(depth)
    }
}

impl fmt::Debug for DiGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DiGraph(n={}, edges={:?})",
            self.node_count(),
            self.edges().collect::<Vec<_>>()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> DiGraph {
        let mut g = DiGraph::new(n);
        for i in 1..n {
            g.add_edge(i - 1, i);
        }
        g
    }

    #[test]
    fn add_remove_edges() {
        let mut g = DiGraph::new(3);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(0, 1));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.succs(0), &[1]);
        assert_eq!(g.preds(1), &[0]);
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn closure_of_chain_is_total_order() {
        let g = chain(5);
        let c = g.transitive_closure();
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(c.has_edge(i, j), i < j, "({i},{j})");
            }
        }
    }

    #[test]
    fn closure_of_diamond() {
        // 0 -> {1,2} -> 3
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        let c = g.transitive_closure();
        assert!(c.has_edge(0, 3));
        assert!(!c.has_edge(1, 2) && !c.has_edge(2, 1));
        assert_eq!(c.edge_count(), 5);
    }

    #[test]
    fn closure_of_cycle_is_complete_with_self_loops() {
        let mut g = chain(3);
        g.add_edge(2, 0);
        let c = g.transitive_closure();
        for i in 0..3 {
            for j in 0..3 {
                assert!(c.has_edge(i, j));
            }
        }
    }

    #[test]
    fn to_undirected_merges_antiparallel() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        let u = g.to_undirected();
        assert_eq!(u.edge_count(), 1);
    }

    #[test]
    fn longest_path_depths() {
        let mut g = DiGraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 3);
        g.add_edge(3, 4);
        g.add_edge(2, 4);
        let d = g.longest_path_from_roots().unwrap();
        assert_eq!(d, vec![0, 1, 2, 1, 3]);
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::new(0);
        assert_eq!(g.node_count(), 0);
        assert!(g.topological_sort().unwrap().is_empty());
        assert_eq!(g.transitive_closure().edge_count(), 0);
    }
}
