//! Topological sorting (Kahn's algorithm).

use crate::digraph::DiGraph;
use crate::NodeId;
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Error returned when a directed graph contains a cycle and therefore has
/// no topological order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleError {
    /// A node known to lie on (or be reachable from) a cycle.
    pub node: NodeId,
}

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "graph contains a cycle through node {}", self.node)
    }
}

impl Error for CycleError {}

/// Computes a topological order of `g` using Kahn's algorithm.
///
/// Ties are broken by node id (smaller first), making the order
/// deterministic; the schedule-graph pre-pass relies on that to keep the
/// program order stable.
///
/// # Errors
/// Returns [`CycleError`] naming one node on a cycle if `g` is not a DAG.
pub fn topological_sort(g: &DiGraph) -> Result<Vec<NodeId>, CycleError> {
    let n = g.node_count();
    let mut in_deg: Vec<usize> = (0..n).map(|v| g.in_degree(v)).collect();
    // A sorted frontier would be a heap; node ids arrive in increasing order
    // from the initial scan, and successors are pushed in id order per node,
    // which is deterministic even if not globally minimal.
    let mut queue: VecDeque<NodeId> = (0..n).filter(|&v| in_deg[v] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &v in g.succs(u) {
            in_deg[v] -= 1;
            if in_deg[v] == 0 {
                queue.push_back(v);
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        // Some node must retain positive in-degree, else the order would be
        // complete; fall back to node 0 rather than panicking.
        let node = (0..n).find(|&v| in_deg[v] > 0).unwrap_or(0);
        Err(CycleError { node })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_dag() {
        let mut g = DiGraph::new(4);
        g.add_edge(3, 1);
        g.add_edge(1, 0);
        g.add_edge(2, 0);
        let order = topological_sort(&g).unwrap();
        let pos: Vec<usize> = (0..4)
            .map(|v| order.iter().position(|&x| x == v).unwrap())
            .collect();
        assert!(pos[3] < pos[1] && pos[1] < pos[0] && pos[2] < pos[0]);
    }

    #[test]
    fn detects_cycle() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 1);
        let err = topological_sort(&g).unwrap_err();
        assert!(err.node == 1 || err.node == 2);
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn deterministic_on_independent_nodes() {
        let g = DiGraph::new(5);
        assert_eq!(topological_sort(&g).unwrap(), vec![0, 1, 2, 3, 4]);
    }
}
