//! Graph coloring algorithms.
//!
//! Pinter's framework turns register allocation into coloring of the
//! parallelizable interference graph, and its optimality theorems are stated
//! for *optimal* colorings. This module therefore provides:
//!
//! * [`greedy_coloring`] — color in a given order, smallest free color first;
//! * [`dsatur_coloring`] — Brélaz's saturation-degree heuristic;
//! * [`chaitin_order`] — Chaitin's simplify order (repeatedly remove a
//!   minimum-degree node), the order used inside the allocators;
//! * [`exact_coloring`] — a branch-and-bound exact minimum coloring, feasible for the
//!   small blocks the paper reasons about, used to validate Theorems 1 and 2;
//! * [`max_clique_lower_bound`] — a greedy clique for pruning the search.

mod chaitin;
mod clique;
mod dsatur;
mod exact;
mod greedy;

pub use chaitin::chaitin_order;
pub use clique::max_clique_lower_bound;
pub use dsatur::dsatur_coloring;
pub use exact::{exact_chromatic_number, exact_coloring, ExactError, ExactLimits};
pub use greedy::greedy_coloring;

use crate::ungraph::UnGraph;
use std::error::Error;
use std::fmt;

/// [`dsatur_coloring`] timed via `telemetry` (span `coloring.dsatur`,
/// counter `coloring.dsatur.colors`).
pub fn dsatur_coloring_with(
    g: &UnGraph,
    telemetry: &dyn parsched_telemetry::Telemetry,
) -> Coloring {
    let _span = parsched_telemetry::span(telemetry, "coloring.dsatur");
    let c = dsatur_coloring(g);
    if telemetry.enabled() {
        telemetry.counter("coloring.dsatur.colors", u64::from(c.num_colors()));
    }
    c
}

/// [`exact_coloring`] timed via `telemetry` (span `coloring.exact`,
/// counter `coloring.exact.colors` on success).
///
/// # Errors
/// Propagates [`ExactError`] from [`exact_coloring`] (limits exceeded).
pub fn exact_coloring_with(
    g: &UnGraph,
    limits: &ExactLimits,
    telemetry: &dyn parsched_telemetry::Telemetry,
) -> Result<Coloring, ExactError> {
    let _span = parsched_telemetry::span(telemetry, "coloring.exact");
    let out = exact_coloring(g, limits);
    if telemetry.enabled() {
        if let Ok(c) = &out {
            telemetry.counter("coloring.exact.colors", u64::from(c.num_colors()));
        }
    }
    out
}

/// A proper coloring of an undirected graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coloring {
    colors: Vec<u32>,
    num_colors: u32,
}

impl Coloring {
    /// Wraps a color assignment, validating it against `g`.
    ///
    /// # Errors
    /// Returns [`ColoringError::Improper`] if two adjacent nodes share a
    /// color, or [`ColoringError::WrongLength`] if `colors.len()` differs
    /// from the node count.
    pub fn new(g: &UnGraph, colors: Vec<u32>) -> Result<Self, ColoringError> {
        if colors.len() != g.node_count() {
            return Err(ColoringError::WrongLength {
                expected: g.node_count(),
                got: colors.len(),
            });
        }
        if let Some((u, v)) = g.edges().find(|&(u, v)| colors[u] == colors[v]) {
            return Err(ColoringError::Improper { u, v });
        }
        let num_colors = colors.iter().copied().max().map_or(0, |m| m + 1);
        Ok(Coloring { colors, num_colors })
    }

    /// Color of node `v`.
    pub fn color(&self, v: usize) -> u32 {
        self.colors[v]
    }

    /// Number of colors used (max color + 1).
    pub fn num_colors(&self) -> u32 {
        self.num_colors
    }

    /// The underlying assignment, indexed by node.
    pub fn as_slice(&self) -> &[u32] {
        &self.colors
    }

    /// Consumes the coloring and returns the assignment vector.
    pub fn into_vec(self) -> Vec<u32> {
        self.colors
    }
}

/// Errors produced when constructing or validating a [`Coloring`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColoringError {
    /// Two adjacent nodes received the same color.
    Improper {
        /// One endpoint of the violated edge.
        u: usize,
        /// The other endpoint.
        v: usize,
    },
    /// The assignment has the wrong number of entries.
    WrongLength {
        /// Node count of the graph.
        expected: usize,
        /// Length of the provided vector.
        got: usize,
    },
}

impl fmt::Display for ColoringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColoringError::Improper { u, v } => {
                write!(f, "adjacent nodes {u} and {v} share a color")
            }
            ColoringError::WrongLength { expected, got } => {
                write!(f, "expected {expected} colors, got {got}")
            }
        }
    }
}

impl Error for ColoringError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> UnGraph {
        let mut g = UnGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 2);
        g
    }

    #[test]
    fn coloring_validation() {
        let g = triangle();
        let c = Coloring::new(&g, vec![0, 1, 2]).unwrap();
        assert_eq!(c.num_colors(), 3);
        assert_eq!(c.color(1), 1);
        assert_eq!(
            Coloring::new(&g, vec![0, 0, 1]),
            Err(ColoringError::Improper { u: 0, v: 1 })
        );
        assert!(matches!(
            Coloring::new(&g, vec![0]),
            Err(ColoringError::WrongLength {
                expected: 3,
                got: 1
            })
        ));
    }

    #[test]
    fn error_display() {
        let e = ColoringError::Improper { u: 1, v: 2 };
        assert_eq!(e.to_string(), "adjacent nodes 1 and 2 share a color");
    }

    #[test]
    fn all_algorithms_agree_on_triangle() {
        let g = triangle();
        assert_eq!(greedy_coloring(&g, &[0, 1, 2]).num_colors(), 3);
        assert_eq!(dsatur_coloring(&g).num_colors(), 3);
        assert_eq!(
            exact_coloring(&g, &ExactLimits::default())
                .unwrap()
                .num_colors(),
            3
        );
    }
}
