//! Greedy sequential coloring.

use super::Coloring;
use crate::ungraph::UnGraph;
use crate::NodeId;

/// Colors `g` greedily in the given node `order`, assigning each node the
/// smallest color unused among its already-colored neighbors.
///
/// Every node must appear exactly once in `order`. Combined with
/// [`chaitin_order`](super::chaitin_order) this yields Chaitin's
/// simplify/select coloring.
///
/// # Panics
/// Panics if `order` is not a permutation of `0..g.node_count()`.
pub fn greedy_coloring(g: &UnGraph, order: &[NodeId]) -> Coloring {
    let n = g.node_count();
    assert_eq!(order.len(), n, "order must cover every node");
    let mut seen = vec![false; n];
    for &v in order {
        assert!(!seen[v], "node {v} appears twice in order");
        seen[v] = true;
    }

    const UNCOLORED: u32 = u32::MAX;
    let mut colors = vec![UNCOLORED; n];
    let mut forbidden = vec![false; n + 1];
    for &v in order {
        for &u in g.neighbors(v) {
            if colors[u] != UNCOLORED {
                forbidden[colors[u] as usize] = true;
            }
        }
        let c = (0..).find(|&c| !forbidden[c as usize]).expect("free color");
        colors[v] = c;
        for &u in g.neighbors(v) {
            if colors[u] != UNCOLORED {
                forbidden[colors[u] as usize] = false;
            }
        }
    }
    Coloring::new(g, colors).expect("greedy coloring is proper by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_uses_two_colors() {
        let mut g = UnGraph::new(4);
        for i in 0..3 {
            g.add_edge(i, i + 1);
        }
        let c = greedy_coloring(&g, &[0, 1, 2, 3]);
        assert_eq!(c.num_colors(), 2);
        assert!(g.is_proper_coloring(c.as_slice()));
    }

    #[test]
    fn order_matters_on_crown() {
        // Crown graph: bad order forces 3 colors on a bipartite graph.
        let mut g = UnGraph::new(6);
        // bipartition {0,1,2} and {3,4,5}; i connected to all of other side
        // except its partner i+3.
        for i in 0..3 {
            for j in 3..6 {
                if j != i + 3 {
                    g.add_edge(i, j);
                }
            }
        }
        let good = greedy_coloring(&g, &[0, 1, 2, 3, 4, 5]);
        assert_eq!(good.num_colors(), 2);
        let bad = greedy_coloring(&g, &[0, 3, 1, 4, 2, 5]);
        assert!(bad.num_colors() >= 3);
    }

    #[test]
    fn empty_graph() {
        let g = UnGraph::new(0);
        let c = greedy_coloring(&g, &[]);
        assert_eq!(c.num_colors(), 0);
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicate_order_panics() {
        let g = UnGraph::new(2);
        greedy_coloring(&g, &[0, 0]);
    }
}
