//! Greedy maximum-clique lower bound.

use crate::ungraph::UnGraph;
use crate::NodeId;

/// Finds a large clique greedily and returns it as a chromatic-number lower
/// bound witness.
///
/// Nodes are tried in decreasing degree order; each is added if adjacent to
/// every member so far. The result is a (not necessarily maximum) clique;
/// its size is a valid lower bound on the chromatic number, used to prune
/// the exact branch-and-bound search.
pub fn max_clique_lower_bound(g: &UnGraph) -> Vec<NodeId> {
    let n = g.node_count();
    let mut nodes: Vec<NodeId> = (0..n).collect();
    nodes.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));

    let mut best: Vec<NodeId> = Vec::new();
    // Grow a clique starting from each of the top-degree seeds.
    for &seed in nodes.iter().take(n.min(16)) {
        let mut clique = vec![seed];
        for &v in &nodes {
            if v != seed && clique.iter().all(|&c| g.has_edge(c, v)) {
                clique.push(v);
            }
        }
        if clique.len() > best.len() {
            best = clique;
        }
    }
    best.sort_unstable();
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_triangle_in_bowtie() {
        // Two triangles sharing node 2.
        let mut g = UnGraph::new(5);
        for &(a, b) in &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)] {
            g.add_edge(a, b);
        }
        let clique = max_clique_lower_bound(&g);
        assert_eq!(clique.len(), 3);
        for i in 0..clique.len() {
            for j in (i + 1)..clique.len() {
                assert!(g.has_edge(clique[i], clique[j]));
            }
        }
    }

    #[test]
    fn complete_graph_is_one_clique() {
        let mut g = UnGraph::new(6);
        for i in 0..6 {
            for j in (i + 1)..6 {
                g.add_edge(i, j);
            }
        }
        assert_eq!(max_clique_lower_bound(&g).len(), 6);
    }

    #[test]
    fn edgeless_graph_single_node() {
        let g = UnGraph::new(4);
        assert_eq!(max_clique_lower_bound(&g).len(), 1);
    }

    #[test]
    fn empty_graph() {
        let g = UnGraph::new(0);
        assert!(max_clique_lower_bound(&g).is_empty());
    }
}
