//! Brélaz's DSATUR coloring heuristic.

use super::Coloring;
use crate::ungraph::UnGraph;
use std::collections::HashSet;

/// Colors `g` with the DSATUR heuristic: repeatedly pick the uncolored node
/// with the most distinctly-colored neighbors (saturation degree), breaking
/// ties by plain degree then node id, and give it the smallest free color.
///
/// DSATUR is exact on bipartite graphs and a strong general heuristic; the
/// exact solver uses it for its initial upper bound.
pub fn dsatur_coloring(g: &UnGraph) -> Coloring {
    let n = g.node_count();
    const UNCOLORED: u32 = u32::MAX;
    let mut colors = vec![UNCOLORED; n];
    let mut saturation: Vec<HashSet<u32>> = vec![HashSet::new(); n];

    for _ in 0..n {
        let v = (0..n)
            .filter(|&v| colors[v] == UNCOLORED)
            .max_by_key(|&v| (saturation[v].len(), g.degree(v), std::cmp::Reverse(v)))
            .expect("uncolored node remains");
        let c = (0..)
            .find(|c| !saturation[v].contains(c))
            .expect("free color");
        colors[v] = c;
        for &u in g.neighbors(v) {
            saturation[u].insert(c);
        }
    }
    Coloring::new(g, colors).expect("dsatur coloring is proper by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_on_bipartite() {
        // Complete bipartite K3,3.
        let mut g = UnGraph::new(6);
        for i in 0..3 {
            for j in 3..6 {
                g.add_edge(i, j);
            }
        }
        assert_eq!(dsatur_coloring(&g).num_colors(), 2);
    }

    #[test]
    fn odd_cycle_needs_three() {
        let mut g = UnGraph::new(5);
        for i in 0..5 {
            g.add_edge(i, (i + 1) % 5);
        }
        let c = dsatur_coloring(&g);
        assert_eq!(c.num_colors(), 3);
        assert!(g.is_proper_coloring(c.as_slice()));
    }

    #[test]
    fn complete_graph() {
        let mut g = UnGraph::new(4);
        for i in 0..4 {
            for j in (i + 1)..4 {
                g.add_edge(i, j);
            }
        }
        assert_eq!(dsatur_coloring(&g).num_colors(), 4);
    }

    #[test]
    fn no_edges_one_color() {
        let g = UnGraph::new(7);
        assert_eq!(dsatur_coloring(&g).num_colors(), 1);
    }
}
