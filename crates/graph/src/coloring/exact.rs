//! Exact minimum coloring by branch and bound.
//!
//! Theorems 1 and 2 of Pinter (PLDI 1993) are stated for *optimal* colorings
//! of the parallelizable interference graph. Basic blocks in the paper's
//! examples have at most nine instructions, so an exact exponential search
//! is entirely feasible for validation; [`ExactLimits`] caps the work so the
//! solver degrades gracefully if handed something large.

use super::clique::max_clique_lower_bound;
use super::dsatur::dsatur_coloring;
use super::Coloring;
use crate::ungraph::UnGraph;
use std::error::Error;
use std::fmt;

/// Resource limits for the exact solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactLimits {
    /// Maximum node count accepted (default 64).
    pub max_nodes: usize,
    /// Maximum number of search-tree nodes expanded (default 5,000,000).
    pub max_steps: u64,
}

impl Default for ExactLimits {
    fn default() -> Self {
        ExactLimits {
            max_nodes: 64,
            max_steps: 5_000_000,
        }
    }
}

/// Error returned when the exact solver gives up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExactError {
    /// The graph exceeds `max_nodes`.
    TooLarge {
        /// Node count of the offending graph.
        nodes: usize,
        /// The configured limit.
        limit: usize,
    },
    /// The search exceeded `max_steps` before proving optimality.
    StepBudgetExhausted,
}

impl fmt::Display for ExactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExactError::TooLarge { nodes, limit } => {
                write!(f, "graph has {nodes} nodes, exact solver limit is {limit}")
            }
            ExactError::StepBudgetExhausted => write!(f, "exact coloring step budget exhausted"),
        }
    }
}

impl Error for ExactError {}

/// Computes a minimum coloring of `g` exactly.
///
/// Runs DSATUR for the upper bound and a greedy clique for the lower bound;
/// if they meet, the heuristic answer is returned directly. Otherwise a
/// branch-and-bound over nodes in DSATUR order searches for successively
/// smaller colorings.
///
/// # Errors
/// Returns [`ExactError`] if `g` exceeds the limits.
pub fn exact_coloring(g: &UnGraph, limits: &ExactLimits) -> Result<Coloring, ExactError> {
    let n = g.node_count();
    if n > limits.max_nodes {
        return Err(ExactError::TooLarge {
            nodes: n,
            limit: limits.max_nodes,
        });
    }
    if n == 0 {
        return Ok(Coloring::new(g, Vec::new()).expect("empty coloring is proper"));
    }

    let mut best = dsatur_coloring(g);
    let clique = max_clique_lower_bound(g);
    let lower = clique.len() as u32;
    if best.num_colors() <= lower {
        return Ok(best);
    }

    // Branch-and-bound: order nodes by degree (descending) with the clique
    // members first so their colors are forced immediately.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| {
        let in_clique = clique.binary_search(&v).is_ok();
        (!in_clique, std::cmp::Reverse(g.degree(v)))
    });

    let mut colors = vec![u32::MAX; n];
    let mut steps = 0u64;
    let mut target = best.num_colors() - 1;
    while target >= lower {
        colors.fill(u32::MAX);
        match try_color(
            g,
            &order,
            0,
            target,
            &mut colors,
            &mut steps,
            limits.max_steps,
        ) {
            Some(true) => {
                best = Coloring::new(g, colors.clone()).expect("search result is proper");
                if target == 0 {
                    break;
                }
                target -= 1;
            }
            Some(false) => break, // proven: target colors impossible, best is optimal
            None => return Err(ExactError::StepBudgetExhausted),
        }
    }
    Ok(best)
}

/// Computes just the chromatic number of `g`.
///
/// # Errors
/// Returns [`ExactError`] if `g` exceeds the limits.
pub fn exact_chromatic_number(g: &UnGraph, limits: &ExactLimits) -> Result<u32, ExactError> {
    exact_coloring(g, limits).map(|c| c.num_colors())
}

/// Tries to color nodes `order[idx..]` with colors `0..num_colors`.
/// Returns `Some(true)` on success, `Some(false)` on exhaustive failure,
/// `None` on step-budget exhaustion.
fn try_color(
    g: &UnGraph,
    order: &[usize],
    idx: usize,
    num_colors: u32,
    colors: &mut [u32],
    steps: &mut u64,
    max_steps: u64,
) -> Option<bool> {
    if idx == order.len() {
        return Some(true);
    }
    *steps += 1;
    if *steps > max_steps {
        return None;
    }
    let v = order[idx];
    let mut used = 0u64; // bitmask of neighbor colors (num_colors <= 64)
    for &u in g.neighbors(v) {
        if colors[u] != u32::MAX {
            used |= 1 << colors[u];
        }
    }
    // Symmetry breaking: never introduce color c before all colors < c have
    // appeared earlier in the assignment order.
    let max_so_far = order[..idx]
        .iter()
        .map(|&u| colors[u] + 1)
        .max()
        .unwrap_or(0);
    let try_up_to = num_colors.min(max_so_far + 1);
    for c in 0..try_up_to {
        if used & (1 << c) == 0 {
            colors[v] = c;
            match try_color(g, order, idx + 1, num_colors, colors, steps, max_steps) {
                Some(true) => return Some(true),
                Some(false) => {}
                None => return None,
            }
            colors[v] = u32::MAX;
        }
    }
    Some(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> UnGraph {
        let mut g = UnGraph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        g
    }

    #[test]
    fn chromatic_numbers_of_cycles() {
        let lim = ExactLimits::default();
        assert_eq!(exact_chromatic_number(&cycle(4), &lim).unwrap(), 2);
        assert_eq!(exact_chromatic_number(&cycle(5), &lim).unwrap(), 3);
        assert_eq!(exact_chromatic_number(&cycle(7), &lim).unwrap(), 3);
    }

    #[test]
    fn complete_graph_needs_n() {
        let mut g = UnGraph::new(5);
        for i in 0..5 {
            for j in (i + 1)..5 {
                g.add_edge(i, j);
            }
        }
        assert_eq!(
            exact_chromatic_number(&g, &ExactLimits::default()).unwrap(),
            5
        );
    }

    #[test]
    fn petersen_graph_is_3_chromatic() {
        // The Petersen graph: outer C5 (0..5), inner pentagram (5..10),
        // spokes i -- i+5.
        let mut g = UnGraph::new(10);
        for i in 0..5 {
            g.add_edge(i, (i + 1) % 5);
            g.add_edge(5 + i, 5 + (i + 2) % 5);
            g.add_edge(i, i + 5);
        }
        let c = exact_coloring(&g, &ExactLimits::default()).unwrap();
        assert_eq!(c.num_colors(), 3);
        assert!(g.is_proper_coloring(c.as_slice()));
    }

    #[test]
    fn beats_bad_heuristic_cases() {
        // Crown graph S3 (bipartite) — exact must find 2 even though naive
        // greedy orderings give 3.
        let mut g = UnGraph::new(6);
        for i in 0..3 {
            for j in 3..6 {
                if j != i + 3 {
                    g.add_edge(i, j);
                }
            }
        }
        assert_eq!(
            exact_chromatic_number(&g, &ExactLimits::default()).unwrap(),
            2
        );
    }

    #[test]
    fn rejects_oversized() {
        let g = UnGraph::new(65);
        let err = exact_coloring(&g, &ExactLimits::default()).unwrap_err();
        assert!(matches!(err, ExactError::TooLarge { nodes: 65, .. }));
        assert!(err.to_string().contains("65"));
    }

    #[test]
    fn empty_and_edgeless() {
        let lim = ExactLimits::default();
        assert_eq!(exact_chromatic_number(&UnGraph::new(0), &lim).unwrap(), 0);
        assert_eq!(exact_chromatic_number(&UnGraph::new(9), &lim).unwrap(), 1);
    }
}
