//! Chaitin's simplify ordering.

use crate::ungraph::UnGraph;
use crate::NodeId;

/// Computes Chaitin's *select* order for coloring with `k` colors.
///
/// Repeatedly removes a node of current degree `< k` (lowest degree first,
/// ties by id); when none exists, removes the node of maximum degree as an
/// optimistic spill candidate (Briggs-style optimism: it may still color).
/// Returns the nodes in **reverse removal order** — i.e. the order in which
/// [`greedy_coloring`](super::greedy_coloring) should color them — together
/// with the list of optimistic candidates in removal order.
///
/// With `k = usize::MAX` this degenerates to a pure smallest-last ordering,
/// which is what the paper's "optimal coloring when registers suffice"
/// experiments use as the heuristic baseline.
pub fn chaitin_order(g: &UnGraph, k: usize) -> (Vec<NodeId>, Vec<NodeId>) {
    let n = g.node_count();
    let mut degree: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let mut removed = vec![false; n];
    let mut stack = Vec::with_capacity(n);
    let mut spill_candidates = Vec::new();

    for _ in 0..n {
        // Prefer a simplifiable node (degree < k), lowest degree first.
        let pick = (0..n)
            .filter(|&v| !removed[v] && degree[v] < k)
            .min_by_key(|&v| (degree[v], v));
        let v = match pick {
            Some(v) => v,
            None => {
                // Blocked: optimistically push the max-degree node.
                let v = (0..n)
                    .filter(|&v| !removed[v])
                    .max_by_key(|&v| (degree[v], std::cmp::Reverse(v)))
                    .expect("nodes remain");
                spill_candidates.push(v);
                v
            }
        };
        removed[v] = true;
        stack.push(v);
        for &u in g.neighbors(v) {
            if !removed[u] {
                degree[u] -= 1;
            }
        }
    }
    stack.reverse();
    (stack, spill_candidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::greedy_coloring;

    #[test]
    fn simplifiable_graph_has_no_candidates() {
        // A path is 2-simplifiable.
        let mut g = UnGraph::new(4);
        for i in 0..3 {
            g.add_edge(i, i + 1);
        }
        let (order, cands) = chaitin_order(&g, 2);
        assert!(cands.is_empty());
        let c = greedy_coloring(&g, &order);
        assert!(c.num_colors() <= 2);
    }

    #[test]
    fn clique_blocks_below_k() {
        let mut g = UnGraph::new(4);
        for i in 0..4 {
            for j in (i + 1)..4 {
                g.add_edge(i, j);
            }
        }
        let (order, cands) = chaitin_order(&g, 3);
        assert_eq!(order.len(), 4);
        assert!(!cands.is_empty());
    }

    #[test]
    fn briggs_optimism_colors_diamond() {
        // C4 (4-cycle) is not 2-simplifiable via Chaitin's test (all degrees
        // are 2, fine for k=2? degree < 2 fails: all degrees == 2), but it IS
        // 2-colorable; optimistic candidates still receive valid colors.
        let mut g = UnGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 0);
        let (order, cands) = chaitin_order(&g, 2);
        assert!(!cands.is_empty());
        let c = greedy_coloring(&g, &order);
        assert_eq!(c.num_colors(), 2, "optimism should still 2-color C4");
    }

    #[test]
    fn smallest_last_with_unbounded_k() {
        let mut g = UnGraph::new(3);
        g.add_edge(0, 1);
        let (order, cands) = chaitin_order(&g, usize::MAX);
        assert!(cands.is_empty());
        assert_eq!(order.len(), 3);
    }
}
