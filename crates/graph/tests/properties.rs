//! Property-based tests for the graph substrate.

use parsched_graph::coloring::{
    chaitin_order, dsatur_coloring, exact_coloring, greedy_coloring, max_clique_lower_bound,
    ExactLimits,
};
use parsched_graph::{strongly_connected_components, DiGraph, UnGraph};
use proptest::prelude::*;

/// Random undirected graph as (n, edge list).
fn ungraph_strategy(max_n: usize) -> impl Strategy<Value = UnGraph> {
    (2usize..max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..(n * 2)).prop_map(move |pairs| {
            let mut g = UnGraph::new(n);
            for (a, b) in pairs {
                if a != b {
                    g.add_edge(a, b);
                }
            }
            g
        })
    })
}

/// Random DAG: edges only from lower to higher index.
fn dag_strategy(max_n: usize) -> impl Strategy<Value = DiGraph> {
    (2usize..max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..(n * 2)).prop_map(move |pairs| {
            let mut g = DiGraph::new(n);
            for (a, b) in pairs {
                if a != b {
                    g.add_edge(a.min(b), a.max(b));
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dsatur_is_always_proper(g in ungraph_strategy(24)) {
        let c = dsatur_coloring(&g);
        prop_assert!(g.is_proper_coloring(c.as_slice()));
    }

    #[test]
    fn greedy_with_chaitin_order_is_proper(g in ungraph_strategy(24)) {
        let (order, _) = chaitin_order(&g, usize::MAX);
        let c = greedy_coloring(&g, &order);
        prop_assert!(g.is_proper_coloring(c.as_slice()));
    }

    #[test]
    fn exact_is_at_most_dsatur_and_at_least_clique(g in ungraph_strategy(16)) {
        let limits = ExactLimits { max_nodes: 16, max_steps: 1_000_000 };
        if let Ok(exact) = exact_coloring(&g, &limits) {
            let dsatur = dsatur_coloring(&g);
            let clique = max_clique_lower_bound(&g);
            prop_assert!(g.is_proper_coloring(exact.as_slice()));
            prop_assert!(exact.num_colors() <= dsatur.num_colors());
            prop_assert!(exact.num_colors() as usize >= clique.len());
        }
    }

    #[test]
    fn complement_is_involutive(g in ungraph_strategy(20)) {
        let cc = g.complement().complement();
        prop_assert_eq!(cc.edge_count(), g.edge_count());
        for (u, v) in g.edges() {
            prop_assert!(cc.has_edge(u, v));
        }
    }

    #[test]
    fn complement_partitions_pairs(g in ungraph_strategy(20)) {
        let comp = g.complement();
        let n = g.node_count();
        prop_assert_eq!(
            g.edge_count() + comp.edge_count(),
            n * (n - 1) / 2,
            "every pair is in exactly one of g, complement"
        );
    }

    #[test]
    fn closure_is_idempotent(g in dag_strategy(16)) {
        let c1 = g.transitive_closure();
        let c2 = c1.transitive_closure();
        prop_assert_eq!(c1.edge_count(), c2.edge_count());
        for (u, v) in c1.edges() {
            prop_assert!(c2.has_edge(u, v));
        }
    }

    #[test]
    fn closure_is_transitive(g in dag_strategy(14)) {
        let c = g.transitive_closure();
        let n = c.node_count();
        for a in 0..n {
            for b in 0..n {
                for d in 0..n {
                    if c.has_edge(a, b) && c.has_edge(b, d) {
                        prop_assert!(c.has_edge(a, d), "({a},{b},{d})");
                    }
                }
            }
        }
    }

    #[test]
    fn topological_sort_respects_edges(g in dag_strategy(20)) {
        let order = g.topological_sort().unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; g.node_count()];
            for (i, &v) in order.iter().enumerate() {
                p[v] = i;
            }
            p
        };
        for (u, v) in g.edges() {
            prop_assert!(pos[u] < pos[v]);
        }
    }

    #[test]
    fn scc_of_dag_is_all_singletons(g in dag_strategy(20)) {
        let sccs = strongly_connected_components(&g);
        prop_assert_eq!(sccs.len(), g.node_count());
        prop_assert!(sccs.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn clique_is_actually_a_clique(g in ungraph_strategy(24)) {
        let clique = max_clique_lower_bound(&g);
        for (i, &a) in clique.iter().enumerate() {
            for &b in &clique[i + 1..] {
                prop_assert!(g.has_edge(a, b));
            }
        }
    }
}
