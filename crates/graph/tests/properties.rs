//! Property-style tests for the graph substrate, driven by a seeded local
//! PRNG so the suite needs no external crates and stays deterministic.

use parsched_graph::coloring::{
    chaitin_order, dsatur_coloring, exact_coloring, greedy_coloring, max_clique_lower_bound,
    ExactLimits,
};
use parsched_graph::{
    strongly_connected_components, BitSet, ClosureMode, DiGraph, Reachability, Rebuilt, UnGraph,
};

/// SplitMix64 — enough randomness for structural graph tests.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// Random undirected graph with 2..max_n nodes and up to 2n edge draws.
fn random_ungraph(rng: &mut Rng, max_n: usize) -> UnGraph {
    let n = 2 + rng.below(max_n - 2);
    let mut g = UnGraph::new(n);
    for _ in 0..rng.below(n * 2 + 1) {
        let a = rng.below(n);
        let b = rng.below(n);
        if a != b {
            g.add_edge(a, b);
        }
    }
    g
}

/// Random DAG: edges only from lower to higher index.
fn random_dag(rng: &mut Rng, max_n: usize) -> DiGraph {
    let n = 2 + rng.below(max_n - 2);
    let mut g = DiGraph::new(n);
    for _ in 0..rng.below(n * 2 + 1) {
        let a = rng.below(n);
        let b = rng.below(n);
        if a != b {
            g.add_edge(a.min(b), a.max(b));
        }
    }
    g
}

const CASES: u64 = 128;

#[test]
fn dsatur_is_always_proper() {
    let mut rng = Rng::new(1);
    for _ in 0..CASES {
        let g = random_ungraph(&mut rng, 24);
        let c = dsatur_coloring(&g);
        assert!(g.is_proper_coloring(c.as_slice()));
    }
}

#[test]
fn greedy_with_chaitin_order_is_proper() {
    let mut rng = Rng::new(2);
    for _ in 0..CASES {
        let g = random_ungraph(&mut rng, 24);
        let (order, _) = chaitin_order(&g, usize::MAX);
        let c = greedy_coloring(&g, &order);
        assert!(g.is_proper_coloring(c.as_slice()));
    }
}

#[test]
fn exact_is_at_most_dsatur_and_at_least_clique() {
    let mut rng = Rng::new(3);
    for _ in 0..CASES {
        let g = random_ungraph(&mut rng, 16);
        let limits = ExactLimits {
            max_nodes: 16,
            max_steps: 1_000_000,
        };
        if let Ok(exact) = exact_coloring(&g, &limits) {
            let dsatur = dsatur_coloring(&g);
            let clique = max_clique_lower_bound(&g);
            assert!(g.is_proper_coloring(exact.as_slice()));
            assert!(exact.num_colors() <= dsatur.num_colors());
            assert!(exact.num_colors() as usize >= clique.len());
        }
    }
}

#[test]
fn complement_is_involutive() {
    let mut rng = Rng::new(4);
    for _ in 0..CASES {
        let g = random_ungraph(&mut rng, 20);
        let cc = g.complement().complement();
        assert_eq!(cc.edge_count(), g.edge_count());
        for (u, v) in g.edges() {
            assert!(cc.has_edge(u, v));
        }
    }
}

#[test]
fn complement_partitions_pairs() {
    let mut rng = Rng::new(5);
    for _ in 0..CASES {
        let g = random_ungraph(&mut rng, 20);
        let comp = g.complement();
        let n = g.node_count();
        assert_eq!(
            g.edge_count() + comp.edge_count(),
            n * (n - 1) / 2,
            "every pair is in exactly one of g, complement"
        );
    }
}

#[test]
fn closure_is_idempotent() {
    let mut rng = Rng::new(6);
    for _ in 0..CASES {
        let g = random_dag(&mut rng, 16);
        let c1 = g.transitive_closure();
        let c2 = c1.transitive_closure();
        assert_eq!(c1.edge_count(), c2.edge_count());
        for (u, v) in c1.edges() {
            assert!(c2.has_edge(u, v));
        }
    }
}

#[test]
fn closure_is_transitive() {
    let mut rng = Rng::new(7);
    for _ in 0..CASES {
        let g = random_dag(&mut rng, 14);
        let c = g.transitive_closure();
        let n = c.node_count();
        for a in 0..n {
            for b in 0..n {
                for d in 0..n {
                    if c.has_edge(a, b) && c.has_edge(b, d) {
                        assert!(c.has_edge(a, d), "({a},{b},{d})");
                    }
                }
            }
        }
    }
}

#[test]
fn topological_sort_respects_edges() {
    let mut rng = Rng::new(8);
    for _ in 0..CASES {
        let g = random_dag(&mut rng, 20);
        let order = g.topological_sort().unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; g.node_count()];
            for (i, &v) in order.iter().enumerate() {
                p[v] = i;
            }
            p
        };
        for (u, v) in g.edges() {
            assert!(pos[u] < pos[v]);
        }
    }
}

#[test]
fn scc_of_dag_is_all_singletons() {
    let mut rng = Rng::new(9);
    for _ in 0..CASES {
        let g = random_dag(&mut rng, 20);
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), g.node_count());
        assert!(sccs.iter().all(|c| c.len() == 1));
    }
}

#[test]
fn clique_is_actually_a_clique() {
    let mut rng = Rng::new(10);
    for _ in 0..CASES {
        let g = random_ungraph(&mut rng, 24);
        let clique = max_clique_lower_bound(&g);
        for (i, &a) in clique.iter().enumerate() {
            for &b in &clique[i + 1..] {
                assert!(g.has_edge(a, b));
            }
        }
    }
}

/// Builds both closure backends over `g`, panicking on deadline (none set).
fn both_backends(g: &DiGraph) -> (Reachability, Reachability) {
    let dense = Reachability::build(g, ClosureMode::Dense, None).unwrap();
    let sparse = Reachability::build(g, ClosureMode::Sparse, None).unwrap();
    (dense, sparse)
}

/// Asserts the two relations answer every query surface identically:
/// `reaches`, `row_iter`, `rrow_iter`, `unordered_into`, and `to_dense`.
fn assert_backends_agree(dense: &Reachability, sparse: &Reachability) {
    let n = dense.len();
    assert_eq!(n, sparse.len());
    assert_eq!(dense.to_dense(), sparse.to_dense());
    let mut universe = BitSet::new(n);
    universe.fill();
    let mut out_d = BitSet::new(n);
    let mut out_s = BitSet::new(n);
    for i in 0..n {
        for j in 0..n {
            assert_eq!(
                dense.reaches(i, j),
                sparse.reaches(i, j),
                "reaches({i}, {j}) diverges"
            );
        }
        let rd: Vec<usize> = dense.row_iter(i).collect();
        let mut rs: Vec<usize> = sparse.row_iter(i).collect();
        rs.sort_unstable();
        assert_eq!(rd, rs, "row_iter({i}) diverges");
        let rd: Vec<usize> = dense.rrow_iter(i).collect();
        let mut rs: Vec<usize> = sparse.rrow_iter(i).collect();
        rs.sort_unstable();
        assert_eq!(rd, rs, "rrow_iter({i}) diverges");
        dense.unordered_into(i, &universe, &mut out_d);
        sparse.unordered_into(i, &universe, &mut out_s);
        assert_eq!(out_d, out_s, "unordered_into({i}) diverges");
    }
}

#[test]
fn sparse_closure_equals_dense_on_random_dags() {
    let mut rng = Rng::new(11);
    for _ in 0..CASES {
        let g = random_dag(&mut rng, 24);
        let (dense, sparse) = both_backends(&g);
        assert_eq!(dense.backend_label(), "dense");
        assert_eq!(sparse.backend_label(), "sparse");
        assert_backends_agree(&dense, &sparse);
    }
}

#[test]
fn incremental_rebuild_equals_from_scratch_for_both_backends() {
    // Simulates a spill round: grow the DAG by splicing new nodes into the
    // index space (the identity-with-gaps remap spill insertion produces),
    // then check the incrementally rebuilt relation matches a fresh build.
    let mut rng = Rng::new(12);
    for _ in 0..CASES {
        let g = random_dag(&mut rng, 20);
        let n = g.node_count();
        let inserted = 1 + rng.below(3);
        let insert_at = rng.below(n + 1);
        let grown_n = n + inserted;
        let old_to_new: Vec<usize> = (0..n)
            .map(|v| if v < insert_at { v } else { v + inserted })
            .collect();
        let mut grown = DiGraph::new(grown_n);
        for u in 0..n {
            for &v in g.succs(u) {
                grown.add_edge(old_to_new[u], old_to_new[v]);
            }
        }
        // Wire the spliced nodes to a random neighbor each, keeping the
        // graph a DAG (edges only from lower to higher index).
        for i in 0..inserted {
            let s = insert_at + i;
            let t = rng.below(grown_n);
            if s != t {
                grown.add_edge(s.min(t), s.max(t));
            }
        }
        for mode in [ClosureMode::Dense, ClosureMode::Sparse] {
            let mut reach = Reachability::build(&g, mode, None).unwrap();
            let rebuilt = reach.rebuild(&g, &grown, &old_to_new, None).unwrap();
            assert!(
                matches!(rebuilt, Rebuilt::Incremental { .. }),
                "usable previous state must take the incremental path"
            );
            let fresh = Reachability::build(&grown, mode, None).unwrap();
            assert_eq!(
                reach.to_dense(),
                fresh.to_dense(),
                "incremental {} rebuild diverges from scratch",
                reach.backend_label()
            );
        }
    }
}

#[test]
fn auto_mode_matches_forced_backends() {
    let mut rng = Rng::new(13);
    for _ in 0..CASES {
        let g = random_dag(&mut rng, 24);
        let auto = Reachability::build(&g, ClosureMode::Auto, None).unwrap();
        let (dense, _) = both_backends(&g);
        assert_eq!(auto.to_dense(), dense.to_dense());
    }
}
