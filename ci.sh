#!/bin/sh
# Local CI: formatting, lints, and the tier-1 gate (release build + tests).
# Runs fully offline — the workspace has no external dependencies.
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release --offline

echo "==> tier-1: cargo test -q"
cargo test -q --offline

echo "CI OK"
