#!/bin/sh
# Local CI: formatting, lints, the panic-audit ratchet, and the tier-1
# gate (release build + tests). Runs fully offline — the workspace has no
# external dependencies.
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> panic audit (ratchet)"
# Count unwrap()/expect(/panic! sites in the hardened crates. The count
# may only go down: lower the baseline when you remove sites; never raise
# it. (unreachable! is exempt — it states an impossibility, not a
# recoverable failure.)
baseline=$(cat ci/panic-baseline.txt)
count=$(grep -rE 'unwrap\(\)|expect\(|panic!' \
    crates/ir/src crates/sched/src crates/regalloc/src crates/core/src \
    crates/exact/src crates/verify/src crates/telemetry/src \
    crates/pscd/src | wc -l)
echo "    panic-pattern sites: $count (baseline $baseline)"
if [ "$count" -gt "$baseline" ]; then
    echo "panic audit FAILED: $count sites > baseline $baseline" >&2
    echo "convert new unwrap()/expect(/panic! to typed errors, or justify" >&2
    echo "an invariant with unreachable! instead" >&2
    exit 1
fi

echo "==> tier-1: cargo build --release"
cargo build --release --offline

echo "==> resilience suite (must finish within 60s — hang guard)"
timeout 60 cargo test -q --offline -p parsched-pscd --test resilience

echo "==> tier-1: cargo test -q (10-minute hang guard)"
timeout 600 cargo test -q --offline

echo "==> doc tests"
timeout 300 cargo test -q --doc --offline --workspace

echo "==> fuzz smoke (corpus replay + seeded sweep over every rung)"
# Replay previously-found bugs first, then a fixed-seed fresh sweep.
# Both are deterministic and together stay well under 30 seconds.
timeout 30 cargo run -q --release --offline -p parsched-verify -- \
    replay ci/fuzz-corpus/*.psc
fuzz_dir=$(mktemp -d /tmp/parsched-fuzz-smoke.XXXXXX)
timeout 30 cargo run -q --release --offline -p parsched-verify -- \
    fuzz --seed 0 --count 60 --out "$fuzz_dir"
# Branchy/loopy sweep: --cfg makes every case a multi-block function, so
# the global (web-based) allocation path is fuzzed on each run.
timeout 30 cargo run -q --release --offline -p parsched-verify -- \
    fuzz --cfg --seed 0 --count 60 --out "$fuzz_dir"
rm -rf "$fuzz_dir"

echo "==> optimality-gap smoke (exact solver vs every heuristic rung)"
# Every case's exact output must pass all checkers + the oracle, and no
# heuristic may beat a proven optimum (exit 1 on either). 60 cases keep
# this deterministic sweep well under the 30-second bound.
gap_out=$(mktemp /tmp/parsched-gap-smoke.XXXXXX.json)
timeout 30 cargo run -q --release --offline -p parsched-verify -- \
    fuzz --gap --seed 0 --count 60 --gap-out "$gap_out" > /dev/null
rm -f "$gap_out"

echo "==> perf smoke (combined compile must stay incremental)"
# One spill-heavy combined compile under a recorder; fails if the
# session PIG never ran (pig.rounds = 0) or spill rounds fell back to
# full closure rebuilds (pig.full_rebuilds > 1).
timeout 30 cargo run -q --release --offline -p parsched-bench -- \
    --perf-smoke

echo "==> smoke bench (tiny sweep; output must self-validate)"
smoke_out=$(mktemp /tmp/parsched-smoke-bench.XXXXXX.json)
timeout 30 cargo run -q --release --offline -p parsched-bench -- \
    --smoke --out "$smoke_out"
timeout 30 cargo run -q --release --offline -p parsched-bench -- \
    --check "$smoke_out"

echo "==> chaos gate (pscd daemon vs parsched-loadgen, must stay under 30s)"
# Start the daemon on a throwaway socket, hammer it with the seeded chaos
# workload, and require both to exit cleanly: the loadgen exits nonzero on
# a daemon crash, an unanswered accepted request, or a cache hit whose
# bytes differ from the cold response; the daemon exits nonzero if the
# drain fails. --shutdown makes the loadgen end the run, so the daemon's
# exit is part of the gate.
chaos_sock=$(mktemp -u /tmp/parsched-chaos.XXXXXX.sock)
./target/release/pscd --listen "$chaos_sock" 2> /dev/null &
chaos_pid=$!
for _ in $(seq 1 50); do
    [ -S "$chaos_sock" ] && break
    sleep 0.1
done
if ! timeout 30 ./target/release/parsched-loadgen --socket "$chaos_sock" \
    --chaos --branchy --seed 0 --requests 500 --rps 500 --shutdown \
    > /dev/null; then
    kill "$chaos_pid" 2> /dev/null || true
    echo "chaos gate FAILED: loadgen reported contract violations" >&2
    exit 1
fi
if ! wait "$chaos_pid"; then
    echo "chaos gate FAILED: pscd did not drain cleanly" >&2
    exit 1
fi
rm -f "$chaos_sock"

echo "==> perf-regression gate (smoke run vs committed baseline)"
# The smoke corpus differs from the full baseline's, so --compare falls
# back to throughput (insts/sec), which is corpus-size-invariant. The
# loose 2.5x threshold absorbs host differences; it exists to catch
# order-of-magnitude regressions (an accidental O(n^3) reintroduction),
# not percent-level drift.
timeout 30 cargo run -q --release --offline -p parsched-bench -- \
    --compare BENCH_parallel.json "$smoke_out" --threshold 2.5 \
    > /dev/null
rm -f "$smoke_out"

echo "CI OK"
