//! Register-pressure sweep: how the three strategies trade cycles, spills
//! and false dependences as the register file shrinks — a miniature of the
//! EXPERIMENTS.md tables.
//!
//! Run with `cargo run -p parsched --example pressure_sweep`.

use parsched::machine::presets;
use parsched::report::Table;
use parsched::telemetry::NullTelemetry;
use parsched::{Pipeline, Strategy};
use parsched_workload::{random_dag_function, DagParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-size block with real ILP.
    let func = random_dag_function(
        5,
        &DagParams {
            size: 32,
            load_fraction: 0.3,
            float_fraction: 0.4,
            window: 8,
        },
    );
    println!(
        "workload: {} instructions, seeded random DAG\n",
        func.inst_count()
    );

    let mut table = Table::new(&[
        "regs",
        "strategy",
        "cycles",
        "regs used",
        "spills",
        "false deps",
    ]);
    for regs in [4u32, 6, 8, 12, 16] {
        let pipeline = Pipeline::new(presets::paper_machine(regs));
        for s in [
            Strategy::AllocThenSched,
            Strategy::SchedThenAlloc,
            Strategy::combined(),
        ] {
            let r = pipeline.compile(&func, &s, &NullTelemetry)?;
            table.row(&[
                regs.to_string(),
                s.label().to_string(),
                r.stats.cycles.to_string(),
                r.stats.registers_used.to_string(),
                r.stats.spilled_values.to_string(),
                r.stats.introduced_false_deps.to_string(),
            ]);
        }
    }
    print!("{}", table.render());
    Ok(())
}
