//! Defining a custom machine — programmatically and from a textual spec —
//! and watching how the unit mix changes what the combined allocator
//! protects.
//!
//! Run with `cargo run -p parsched --example custom_machine`.

use parsched::machine::{parse_machine_spec, MachineDesc, OpClass};
use parsched::telemetry::NullTelemetry;
use parsched::{Pipeline, Strategy};
use parsched_workload::kernel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Programmatic: a dual-fetch machine (two loads per cycle).
    let mut b = MachineDesc::builder("dual-fetch");
    b.issue_width(4).num_regs(8);
    let fixed = b.unit("fixed", 1);
    let float = b.unit("float", 1);
    let fetch = b.unit("fetch", 2); // <- two fetch ports
    let branch = b.unit("branch", 1);
    b.route(OpClass::IntAlu, fixed, 1)
        .route(OpClass::FloatAlu, float, 1)
        .route(OpClass::MemLoad, fetch, 1)
        .route(OpClass::MemStore, fetch, 1)
        .route(OpClass::Branch, branch, 1)
        .route(OpClass::Call, branch, 1)
        .route(OpClass::Nop, fixed, 1);
    let dual_fetch = b.finish();

    // 2. The same machine from a textual spec (what `psc --machine-spec`
    //    reads from a file).
    let from_spec = parse_machine_spec(
        "machine dual-fetch-spec\n\
         issue 4\n\
         regs 8\n\
         unit fixed 1\n\
         unit float 1\n\
         unit fetch 2\n\
         unit branch 1\n\
         route int fixed 1\n\
         route float float 1\n\
         route load fetch 1\n\
         route store fetch 1\n\
         route branch branch 1\n\
         route call branch 1\n\
         route nop fixed 1",
    )?;
    assert_eq!(from_spec.issue_width(), dual_fetch.issue_width());

    // 3. Compare against the paper's single-fetch machine on a load-heavy
    //    kernel: doubling fetch ports should shorten the schedule.
    let func = kernel("dot8").expect("corpus kernel");
    let single_fetch = parsched::machine::presets::paper_machine(8);
    for machine in [single_fetch, dual_fetch] {
        let r =
            Pipeline::new(machine.clone()).compile(&func, &Strategy::combined(), &NullTelemetry)?;
        println!(
            "{:<24} {} cycles, {} registers, {} false deps",
            machine.name(),
            r.stats.cycles,
            r.stats.registers_used,
            r.stats.introduced_false_deps
        );
    }
    Ok(())
}
