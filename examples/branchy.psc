# A branchy cascade of diamonds — the worked example of docs/GLOBAL.md and
# docs/TUTORIAL.md §10.
#
# Each stage computes a value in one of two arms and hands it to the next
# join block, so every stage value (s1..s4) is a *cross-block web*. The
# webs are born and die in sequence: s1 dies where s2 is defined, s2 where
# s3 is, and so on. Global (web-scoped) allocation therefore packs the
# whole cascade into two registers, while the per-block baseline must
# dedicate one register to each of the four cross-block webs:
#
#   psc examples/branchy.psc --global    --emit stats   -> 2 registers
#   psc examples/branchy.psc --per-block --emit stats   -> 4 registers
#
# (see EXPERIMENTS.md, "Global vs per-block allocation")
func @cascade(s0) {
entry:
    s1 = add s0, 1
    beq s0, 0, b1b
b1a:
    s2 = mul s1, 2
    jmp b2
b1b:
    s2 = mul s1, 3
b2:
    s3 = add s2, 1
    beq s2, 0, b3b
b3a:
    s4 = mul s3, 2
    jmp b4
b3b:
    s4 = mul s3, 3
b4:
    s5 = add s4, 1
    ret s5
}
