func @dot8(s0, s1) {
entry:
    s2 = load [s0 + 0]
    s3 = load [s1 + 0]
    s4 = load [s0 + 8]
    s5 = load [s1 + 8]
    s6 = load [s0 + 16]
    s7 = load [s1 + 16]
    s8 = load [s0 + 24]
    s9 = load [s1 + 24]
    s10 = fmul s2, s3
    s11 = fmul s4, s5
    s12 = fmul s6, s7
    s13 = fmul s8, s9
    s14 = fadd s10, s11
    s15 = fadd s12, s13
    s16 = fadd s14, s15
    ret s16
}

func @fir4(s0, s1) {
entry:
    s2 = load [s0 + 0]
    s3 = load [s0 + 8]
    s4 = load [s0 + 16]
    s5 = load [s0 + 24]
    s6 = load [s1 + 0]
    s7 = load [s1 + 8]
    s8 = load [s1 + 16]
    s9 = load [s1 + 24]
    s10 = fmul s2, s6
    s11 = fmul s3, s7
    s12 = fmul s4, s8
    s13 = fmul s5, s9
    s14 = fadd s10, s11
    s15 = fadd s14, s12
    s16 = fadd s15, s13
    ret s16
}

func @horner6(s0, s1) {
entry:
    s2 = load [s1 + 0]
    s3 = load [s1 + 8]
    s4 = load [s1 + 16]
    s5 = load [s1 + 24]
    s6 = load [s1 + 32]
    s7 = load [s1 + 40]
    s8 = load [s1 + 48]
    s9 = fmul s2, s0
    s10 = fadd s9, s3
    s11 = fmul s10, s0
    s12 = fadd s11, s4
    s13 = fmul s12, s0
    s14 = fadd s13, s5
    s15 = fmul s14, s0
    s16 = fadd s15, s6
    s17 = fmul s16, s0
    s18 = fadd s17, s7
    s19 = fmul s18, s0
    s20 = fadd s19, s8
    ret s20
}

func @matmul2(s0, s1, s2) {
entry:
    s3 = load [s0 + 0]
    s4 = load [s0 + 8]
    s5 = load [s0 + 16]
    s6 = load [s0 + 24]
    s7 = load [s1 + 0]
    s8 = load [s1 + 8]
    s9 = load [s1 + 16]
    s10 = load [s1 + 24]
    s11 = fmul s3, s7
    s12 = fmul s4, s9
    s13 = fadd s11, s12
    s14 = fmul s3, s8
    s15 = fmul s4, s10
    s16 = fadd s14, s15
    s17 = fmul s5, s7
    s18 = fmul s6, s9
    s19 = fadd s17, s18
    s20 = fmul s5, s8
    s21 = fmul s6, s10
    s22 = fadd s20, s21
    store s13, [s2 + 0]
    store s16, [s2 + 8]
    store s19, [s2 + 16]
    store s22, [s2 + 24]
    ret s13
}
