//! The paper's motivating comparison on its own Example 1: the same block
//! compiled under all three phase orderings, with the false dependence
//! made visible.
//!
//! Run with `cargo run -p parsched --example phase_ordering`.

use parsched::ir::print_function;
use parsched::telemetry::NullTelemetry;
use parsched::{paper, Pipeline, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let func = paper::example1();
    println!("Example 1 (symbolic):\n{}", print_function(&func));

    // Three registers — the paper's operating point.
    let pipeline = Pipeline::new(paper::machine(3));

    for strategy in [
        Strategy::AllocThenSched,
        Strategy::SchedThenAlloc,
        Strategy::combined(),
    ] {
        let r = pipeline.compile(&func, &strategy, &NullTelemetry)?;
        println!("--- {} ---", strategy.label());
        println!("{}", print_function(&r.function));
        println!(
            "registers: {}   cycles: {}   spills: {}   false deps: {}\n",
            r.stats.registers_used,
            r.stats.cycles,
            r.stats.spilled_values,
            r.stats.introduced_false_deps,
        );
    }
    Ok(())
}
