//! A realistic workload: an unrolled dot product compiled for three
//! different machines, with the scheduled issue groups printed and the
//! result checked against the reference interpreter.
//!
//! Run with `cargo run -p parsched --example dot_product`.

use parsched::ir::interp::{Interpreter, Memory};
use parsched::ir::{print_inst, BlockId};
use parsched::machine::presets;
use parsched::sched::{list_schedule, DepGraph, SchedPriority};
use parsched::telemetry::NullTelemetry;
use parsched::{Pipeline, Strategy};
use parsched_workload::kernel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let func = kernel("dot8").expect("corpus kernel");

    // Memory: x[i] = i+1 at base 1000, y[i] = 2i+1 at base 2000.
    let mut mem = Memory::new();
    for i in 0..8 {
        mem.set_abs(1000 + i * 8, i + 1);
        mem.set_abs(2000 + i * 8, 2 * i + 1);
    }
    let interp = Interpreter::new();
    let reference = interp.run(&func, &[1000, 2000], mem.clone())?;
    println!("reference result: {:?}", reference.return_value);

    for machine in [
        presets::single_issue(8),
        presets::paper_machine(8),
        presets::rs6000(8),
    ] {
        let pipeline = Pipeline::new(machine.clone());
        let r = pipeline.compile(&func, &Strategy::combined(), &NullTelemetry)?;
        let out = interp.run(&r.function, &[1000, 2000], mem.clone())?;
        assert_eq!(out.return_value, reference.return_value);

        println!("\n=== {machine} ===  ({} cycles)", r.stats.cycles);
        let block = r.function.block(BlockId(0));
        let deps = DepGraph::build(block, &NullTelemetry);
        let schedule = list_schedule(
            block,
            &deps,
            &machine,
            SchedPriority::CriticalPath,
            &NullTelemetry,
        )?;
        for (cycle, group) in schedule.groups() {
            let insts: Vec<String> = group
                .iter()
                .map(|&i| print_inst(&block.body()[i], &r.function))
                .collect();
            println!("  cycle {cycle:>2}: {}", insts.join("  ||  "));
        }
    }
    Ok(())
}
