//! Quickstart: parse a function, compile it with the combined allocator,
//! and inspect the result.
//!
//! Run with `cargo run -p parsched --example quickstart`.

use parsched::ir::{parse_function, print_function};
use parsched::machine::presets;
use parsched::telemetry::NullTelemetry;
use parsched::{Pipeline, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small block with independent int and float streams.
    let func = parse_function(
        r#"
        func @axpy2(s0, s1, s2) {
        entry:
            s3 = load [s1 + 0]
            s4 = load [s2 + 0]
            s5 = fmul s0, s3
            s6 = fadd s5, s4
            store s6, [s2 + 0]
            s7 = load [s1 + 8]
            s8 = load [s2 + 8]
            s9 = fmul s0, s7
            s10 = fadd s9, s8
            store s10, [s2 + 8]
            ret s10
        }
        "#,
    )?;

    println!("input:\n{}", print_function(&func));

    // The paper's machine: one fixed-point, one floating-point, one fetch
    // and one branch unit, here with 6 allocatable registers.
    let machine = presets::paper_machine(6);
    let pipeline = Pipeline::new(machine);

    let result = pipeline.compile(&func, &Strategy::combined(), &NullTelemetry)?;
    println!(
        "compiled (combined strategy):\n{}",
        print_function(&result.function)
    );
    println!("registers used:          {}", result.stats.registers_used);
    println!("schedule length (cycles): {}", result.stats.cycles);
    println!("spilled values:          {}", result.stats.spilled_values);
    println!(
        "false deps introduced:   {}",
        result.stats.introduced_false_deps
    );
    Ok(())
}
