func @dag_1(s0, s1) {
entry:
    s2 = sub s1, s1
    s3 = fsub s2, s2
    s4 = sub s2, s3
    s5 = load [s0 + 0]
    s6 = sub s2, s5
    s7 = load [s0 + 8]
    s8 = fsub s4, s5
    s9 = mul s4, s5
    s10 = and s6, s7
    s11 = xor s7, s9
    s12 = load [s0 + 16]
    s13 = fmul s8, s11
    s14 = fsub s10, s8
    s15 = mul s14, s10
    s16 = fmul s12, s10
    s17 = fmul s11, s15
    s18 = add s17, s17
    s19 = mul s15, s14
    s20 = fadd s19, s17
    s21 = and s20, s20
    s22 = load [s0 + 24]
    s23 = fadd s19, s17
    s24 = add s20, s19
    s25 = sub s22, s20
    s26 = fadd s23, s23
    s27 = and s23, s23
    s28 = load [s0 + 32]
    s29 = load [s0 + 40]
    s30 = and s26, s28
    s31 = fmul s28, s27
    s32 = xor s26, s27
    s33 = xor s32, s28
    s34 = xor s33, s29
    s35 = xor s34, s30
    s36 = xor s35, s31
    ret s36
}

func @dag_8(s0, s1) {
entry:
    s2 = mul s1, s1
    s3 = fsub s2, s1
    s4 = fadd s2, s1
    s5 = xor s2, s2
    s6 = xor s5, s2
    s7 = mul s3, s4
    s8 = mul s7, s5
    s9 = fmul s4, s7
    s10 = fadd s7, s6
    s11 = fadd s5, s5
    s12 = load [s0 + 0]
    s13 = fsub s12, s7
    s14 = fmul s12, s9
    s15 = fadd s14, s9
    s16 = and s14, s13
    s17 = sub s16, s14
    s18 = mul s15, s15
    s19 = xor s18, s16
    s20 = load [s0 + 8]
    s21 = sub s20, s15
    s22 = load [s0 + 16]
    s23 = xor s19, s17
    s24 = sub s19, s21
    s25 = xor s20, s24
    s26 = and s24, s22
    s27 = sub s21, s22
    s28 = load [s0 + 24]
    s29 = fsub s27, s26
    s30 = and s27, s29
    s31 = load [s0 + 32]
    s32 = xor s26, s27
    s33 = xor s32, s28
    s34 = xor s33, s29
    s35 = xor s34, s30
    s36 = xor s35, s31
    ret s36
}

func @dag_15(s0, s1) {
entry:
    s2 = fsub s1, s1
    s3 = fmul s2, s2
    s4 = load [s0 + 0]
    s5 = fadd s1, s1
    s6 = fadd s5, s3
    s7 = sub s5, s5
    s8 = fsub s2, s5
    s9 = load [s0 + 8]
    s10 = sub s5, s8
    s11 = load [s0 + 16]
    s12 = load [s0 + 24]
    s13 = mul s11, s8
    s14 = add s13, s9
    s15 = add s9, s13
    s16 = and s12, s10
    s17 = fsub s13, s14
    s18 = mul s16, s13
    s19 = add s15, s15
    s20 = and s17, s17
    s21 = load [s0 + 32]
    s22 = load [s0 + 40]
    s23 = fsub s22, s20
    s24 = sub s23, s21
    s25 = and s24, s20
    s26 = load [s0 + 48]
    s27 = load [s0 + 56]
    s28 = mul s23, s24
    s29 = load [s0 + 64]
    s30 = fmul s27, s26
    s31 = xor s29, s28
    s32 = xor s26, s27
    s33 = xor s32, s28
    s34 = xor s33, s29
    s35 = xor s34, s30
    s36 = xor s35, s31
    ret s36
}

func @cfg_40(s0, s1) {
entry:
    blt s1, 0, else0
then0:
    s3 = xor s0, s1
    s4 = xor s0, s0
    s2 = add s1, 1
    jmp join0
else0:
    s2 = mul s0, 3
join0:
    s5 = mov s1
    s6 = li 0
head1:
    s7 = slt s6, 5
    beq s7, 0, exit1
body1:
    s8 = add s5, s0
    s5 = mov s8
    s9 = add s6, 1
    s6 = mov s9
    jmp head1
exit1:
    s10 = mov s2
    s11 = li 0
head2:
    s12 = slt s11, 2
    beq s12, 0, exit2
body2:
    s13 = add s10, s2
    s10 = mov s13
    s14 = add s11, 1
    s11 = mov s14
    jmp head2
exit2:
    s15 = xor s10, s5
    s16 = xor s15, s2
    ret s16
}

func @cfg_41(s0, s1) {
entry:
    jmp straight0
straight0:
    s2 = xor s1, s1
    s3 = xor s0, 5
    s4 = and s0, s1
    s5 = fadd s3, 2
    s6 = fmul s4, s2
    s7 = mov s4
    s8 = li 0
head1:
    s9 = slt s8, 5
    beq s9, 0, exit1
body1:
    s10 = add s7, s5
    s7 = mov s10
    s11 = add s8, 1
    s8 = mov s11
    jmp head1
exit1:
    blt s3, 0, else2
then2:
    s13 = fadd s1, s2
    s14 = and s7, 9
    s12 = add s7, 1
    jmp join2
else2:
    s12 = mul s2, 3
join2:
    s15 = xor s12, s7
    s16 = xor s15, s6
    ret s16
}
